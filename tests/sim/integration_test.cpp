// End-to-end integration: one modest experiment point per method through
// the full pipeline (trace generation -> training -> simulation ->
// prediction evaluation), asserting the paper's qualitative orderings.
//
// These use a reduced workload so the whole suite stays fast; the full
// figure regeneration lives in bench/.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "sim/experiment.hpp"

namespace corp::sim {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig experiment;
    experiment.environment = cluster::EnvironmentConfig::PalmettoCluster();
    experiment.seed = 7;
    experiment.training_jobs = 120;
    experiment.training_horizon_slots = 160;
    results_ = new std::map<Method, PointResult>();
    for (Method m : predict::kAllMethods) {
      (*results_)[m] = run_point(experiment, m, 150);
    }
  }

  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const PointResult& result(Method m) { return results_->at(m); }

  static std::map<Method, PointResult>* results_;
};

std::map<Method, PointResult>* IntegrationFixture::results_ = nullptr;

TEST_F(IntegrationFixture, AllJobsComplete) {
  for (Method m : predict::kAllMethods) {
    EXPECT_GT(result(m).sim.jobs_completed, 0u);
    EXPECT_EQ(result(m).sim.jobs_forced, 0u) << predict::method_name(m);
  }
}

TEST_F(IntegrationFixture, UtilizationOrderingMatchesFig7) {
  // CORP > RCCR > CloudScale > DRA (allow CloudScale/RCCR to touch:
  // mid-load points in Fig. 7 run close).
  const double corp = result(Method::kCorp).sim.overall_utilization;
  const double rccr = result(Method::kRccr).sim.overall_utilization;
  const double cs = result(Method::kCloudScale).sim.overall_utilization;
  const double dra = result(Method::kDra).sim.overall_utilization;
  EXPECT_GT(corp, rccr);
  EXPECT_GT(rccr, cs - 0.03);
  EXPECT_GT(cs, dra);
}

TEST_F(IntegrationFixture, SloOrderingMatchesFig9) {
  // CORP < RCCR < CloudScale < DRA.
  const double corp = result(Method::kCorp).sim.slo_violation_rate;
  const double rccr = result(Method::kRccr).sim.slo_violation_rate;
  const double cs = result(Method::kCloudScale).sim.slo_violation_rate;
  const double dra = result(Method::kDra).sim.slo_violation_rate;
  EXPECT_LT(corp, rccr + 1e-9);
  EXPECT_LT(rccr, cs + 1e-9);
  EXPECT_LT(cs, dra + 1e-9);
}

TEST_F(IntegrationFixture, PredictionErrorOrderingMatchesFig6) {
  // CORP < RCCR < {CloudScale, DRA}.
  const double corp = result(Method::kCorp).prediction.error_rate;
  const double rccr = result(Method::kRccr).prediction.error_rate;
  const double cs = result(Method::kCloudScale).prediction.error_rate;
  const double dra = result(Method::kDra).prediction.error_rate;
  EXPECT_LT(corp, rccr + 0.05);
  EXPECT_LT(rccr, cs);
  EXPECT_LT(rccr, dra);
}

TEST_F(IntegrationFixture, LatencyReflectsPredictionCost) {
  // Fig. 10's qualitative story: decision latency is dominated by the
  // prediction pipeline, so the forecasting methods (CORP's DNN+HMM,
  // RCCR's per-job ETS refits) pay far more compute than the demand-based
  // placers. The paper's CORP-highest ordering reflects unbatched
  // inference; with the batched GEMM engine one fused forward pass across
  // all running jobs undercuts RCCR's O(history) ETS refits (see
  // docs/batching.md), so CORP vs RCCR is deliberately not pinned.
  const double corp = result(Method::kCorp).sim.compute_latency_ms;
  const double rccr = result(Method::kRccr).sim.compute_latency_ms;
  for (Method m : {Method::kCloudScale, Method::kDra}) {
    const double baseline = result(m).sim.compute_latency_ms;
    EXPECT_GT(corp, baseline) << predict::method_name(m);
    EXPECT_GT(rccr, baseline) << predict::method_name(m);
  }
}

TEST_F(IntegrationFixture, OpportunisticReuseHappens) {
  EXPECT_GT(result(Method::kCorp).sim.opportunistic_placements, 0u);
  EXPECT_EQ(result(Method::kCloudScale).sim.opportunistic_placements, 0u);
  EXPECT_EQ(result(Method::kDra).sim.opportunistic_placements, 0u);
}

TEST(ExperimentConfigTest, AggressivenessMapsMonotonically) {
  ExperimentConfig experiment;
  const auto conservative =
      make_simulation_config(experiment, Method::kCorp, 0.0);
  const auto aggressive =
      make_simulation_config(experiment, Method::kCorp, 1.0);
  ASSERT_TRUE(conservative.stack.has_value());
  ASSERT_TRUE(aggressive.stack.has_value());
  EXPECT_GT(conservative.stack->probability_threshold,
            aggressive.stack->probability_threshold);
  EXPECT_GT(conservative.stack->confidence_level,
            aggressive.stack->confidence_level);
  EXPECT_LT(conservative.stack->error_tolerance,
            aggressive.stack->error_tolerance);
}

TEST(ExperimentConfigTest, BaselineKnobsMapped) {
  ExperimentConfig experiment;
  const auto cs0 =
      make_simulation_config(experiment, Method::kCloudScale, 0.0);
  const auto cs1 =
      make_simulation_config(experiment, Method::kCloudScale, 1.0);
  ASSERT_TRUE(cs0.cloudscale_scheduler.has_value());
  EXPECT_GT(cs0.cloudscale_scheduler->padding_scale,
            cs1.cloudscale_scheduler->padding_scale);
  const auto dra0 = make_simulation_config(experiment, Method::kDra, 0.0);
  const auto dra1 = make_simulation_config(experiment, Method::kDra, 1.0);
  ASSERT_TRUE(dra0.dra_scheduler.has_value());
  EXPECT_GT(dra0.dra_scheduler->entitlement_scale,
            dra1.dra_scheduler->entitlement_scale);
}

TEST(FigureTest, TableAndCsvRender) {
  // Aggregate-init rather than member-wise `fig.xlabel = "x"` assignment:
  // gcc 12 emits a bogus -Wrestrict through the SSO path of
  // std::string::operator=(const char*) at -O3 (GCC PR105651), which the
  // CORP_WERROR wall would turn into a build break.
  Figure fig{.id = "test",
             .title = "Title",
             .xlabel = "x",
             .ylabel = "y",
             .x = {1.0, 2.0},
             .series = {{"A", {0.1, 0.2}}, {"B", {0.3, 0.4}}}};
  const std::string table = fig.to_table();
  EXPECT_NE(table.find("Title"), std::string::npos);
  EXPECT_NE(table.find("A"), std::string::npos);
  std::ostringstream csv;
  fig.write_csv(csv);
  EXPECT_NE(csv.str().find("x,A,B"), std::string::npos);
  EXPECT_NE(csv.str().find("0.3"), std::string::npos);
}

}  // namespace
}  // namespace corp::sim
