#include "cluster/slo.hpp"

#include <gtest/gtest.h>

namespace corp::cluster {
namespace {

TEST(SloTrackerTest, EmptyRates) {
  SloTracker tracker;
  EXPECT_EQ(tracker.completed(), 0u);
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.mean_stretch(), 0.0);
}

TEST(SloTrackerTest, OnTimeJobNotViolated) {
  SloTracker tracker;
  tracker.record(1, 10, 10, 12.0);
  EXPECT_EQ(tracker.violations(), 0u);
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 0.0);
}

TEST(SloTrackerTest, LateJobViolated) {
  SloTracker tracker;
  tracker.record(1, 10, 13, 12.0);
  EXPECT_EQ(tracker.violations(), 1u);
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 1.0);
  EXPECT_TRUE(tracker.outcomes()[0].violated);
}

TEST(SloTrackerTest, ThresholdBoundaryNotViolated) {
  SloTracker tracker;
  tracker.record(1, 10, 12, 12.0);  // exactly at threshold
  EXPECT_EQ(tracker.violations(), 0u);
}

TEST(SloTrackerTest, ZeroThresholdNeverViolates) {
  SloTracker tracker;
  tracker.record(1, 10, 100, 0.0);
  EXPECT_EQ(tracker.violations(), 0u);
}

TEST(SloTrackerTest, RateAggregates) {
  SloTracker tracker;
  tracker.record(1, 10, 10, 12.0);  // ok
  tracker.record(2, 10, 15, 12.0);  // violated
  tracker.record(3, 10, 11, 12.0);  // ok
  tracker.record(4, 10, 20, 12.0);  // violated
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 0.5);
  EXPECT_EQ(tracker.completed(), 4u);
}

TEST(SloTrackerTest, MeanStretch) {
  SloTracker tracker;
  tracker.record(1, 10, 10, 12.0);  // stretch 1.0
  tracker.record(2, 10, 20, 12.0);  // stretch 2.0
  EXPECT_DOUBLE_EQ(tracker.mean_stretch(), 1.5);
}

TEST(SloTrackerTest, MeanStretchSkipsZeroDuration) {
  SloTracker tracker;
  tracker.record(1, 0, 5, 1.0);
  tracker.record(2, 10, 10, 12.0);
  EXPECT_DOUBLE_EQ(tracker.mean_stretch(), 1.0);
}

TEST(SloTrackerTest, ResetClears) {
  SloTracker tracker;
  tracker.record(1, 10, 20, 12.0);
  tracker.reset();
  EXPECT_EQ(tracker.completed(), 0u);
  EXPECT_EQ(tracker.violations(), 0u);
}

}  // namespace
}  // namespace corp::cluster
