#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace corp::cluster {
namespace {

TEST(EnvironmentTest, PalmettoMatchesPaper) {
  const EnvironmentConfig env = EnvironmentConfig::PalmettoCluster();
  EXPECT_EQ(env.num_pms, 50u);  // "we applied for 50 nodes"
  EXPECT_EQ(env.pm_capacity, trace::ResourceVector(16.0, 64.0, 720.0));
  // N_v within Table II's 100-400 range.
  EXPECT_GE(env.total_vms(), 100u);
  EXPECT_LE(env.total_vms(), 400u);
}

TEST(EnvironmentTest, Ec2MatchesPaper) {
  const EnvironmentConfig env = EnvironmentConfig::AmazonEc2();
  EXPECT_EQ(env.num_pms, 30u);       // 30 nodes
  EXPECT_EQ(env.vms_per_pm, 1u);     // "each node is simulated as a VM"
  EXPECT_DOUBLE_EQ(env.pm_capacity.storage(), 720.0);  // 720 GB disk
  // EC2's communication overhead exceeds the local cluster's (Fig. 14 vs
  // Fig. 10).
  EXPECT_GT(env.comm_overhead_us,
            EnvironmentConfig::PalmettoCluster().comm_overhead_us);
}

TEST(EnvironmentTest, VmCapacityIsEvenCarve) {
  EnvironmentConfig env = EnvironmentConfig::PalmettoCluster();
  env.vms_per_pm = 4;
  EXPECT_EQ(env.vm_capacity(), trace::ResourceVector(4.0, 16.0, 180.0));
}

TEST(ClusterTest, BuildsAllVms) {
  const Cluster cluster(EnvironmentConfig::PalmettoCluster());
  const auto env = EnvironmentConfig::PalmettoCluster();
  EXPECT_EQ(cluster.num_pms(), env.num_pms);
  EXPECT_EQ(cluster.num_vms(), env.total_vms());
}

TEST(ClusterTest, VmsMappedToPms) {
  const Cluster cluster(EnvironmentConfig::PalmettoCluster());
  for (std::size_t p = 0; p < cluster.num_pms(); ++p) {
    const PhysicalMachine& pm = cluster.pm(p);
    EXPECT_EQ(pm.vm_ids.size(),
              EnvironmentConfig::PalmettoCluster().vms_per_pm);
    for (std::uint32_t vid : pm.vm_ids) {
      EXPECT_EQ(cluster.vm(vid).pm_id(), pm.id);
      EXPECT_EQ(cluster.vm(vid).id(), vid);
    }
  }
}

TEST(ClusterTest, MaxVmCapacity) {
  const Cluster cluster(EnvironmentConfig::PalmettoCluster());
  const auto max_cap = cluster.max_vm_capacity();
  EXPECT_EQ(max_cap, EnvironmentConfig::PalmettoCluster().vm_capacity());
}

TEST(ClusterTest, TotalsAggregate) {
  Cluster cluster(EnvironmentConfig::AmazonEc2());
  EXPECT_EQ(cluster.total_committed(), trace::ResourceVector::zero());
  const auto capacity = cluster.total_capacity();
  EXPECT_DOUBLE_EQ(capacity.cpu(), 2.0 * 30);
  cluster.vm(0).commit(trace::ResourceVector(1.0, 1.0, 10.0));
  cluster.vm(5).commit(trace::ResourceVector(0.5, 2.0, 20.0));
  EXPECT_EQ(cluster.total_committed(),
            trace::ResourceVector(1.5, 3.0, 30.0));
}

TEST(ClusterTest, ResetReleasesEverything) {
  Cluster cluster(EnvironmentConfig::AmazonEc2());
  cluster.vm(0).commit(trace::ResourceVector(1.0, 1.0, 10.0));
  cluster.reset();
  EXPECT_EQ(cluster.total_committed(), trace::ResourceVector::zero());
}

}  // namespace
}  // namespace corp::cluster
