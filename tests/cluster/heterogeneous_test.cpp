// Heterogeneous node classes: Cluster must carve each NodeClass into a
// contiguous VM-id range with per-class capacities, homogeneous
// environments must keep the legacy layout bit for bit, and the
// partition-level reserved-admission cap (max_reserved_jobs) must gate
// new reservations inside the sharded slot engine — shard-invariantly,
// with opportunistic placement unaffected.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "cluster/cluster.hpp"
#include "cluster/environment.hpp"
#include "sim/simulation.hpp"
#include "sim/workloads.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace corp::cluster {
namespace {

trace::Trace tiny_trace(const EnvironmentConfig& env, std::size_t jobs,
                        std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(
      sim::scaled_generator_config(env, jobs, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

sim::SimulationResult run_corp(const EnvironmentConfig& env,
                               std::size_t shards, std::size_t threads,
                               const trace::Trace& training,
                               const trace::Trace& eval) {
  sim::SimulationConfig config;
  config.environment = env;
  config.method = sim::Method::kCorp;
  config.seed = 5;
  config.params.shards = shards;
  config.params.threads = threads;
  sim::Simulation sim(std::move(config));
  sim.train(training);
  return sim.run(eval);
}

TEST(HeterogeneousClusterTest, SlurmPresetBuildsContiguousPartitions) {
  const EnvironmentConfig env = EnvironmentConfig::SlurmHeterogeneous();
  ASSERT_TRUE(env.heterogeneous());
  const Cluster cluster(env);

  // compute 32x2 = 64 VMs, bigmem 8x1 = 8, burst 10x4 = 40.
  ASSERT_EQ(cluster.num_vms(), 112u);
  ASSERT_EQ(cluster.num_pms(), 50u);
  ASSERT_EQ(cluster.num_partitions(), 3u);

  const trace::ResourceVector compute_vm(8.0, 32.0, 360.0);
  const trace::ResourceVector bigmem_vm(32.0, 256.0, 1440.0);
  const trace::ResourceVector burst_vm(2.0, 4.0, 90.0);
  for (std::size_t v = 0; v < cluster.num_vms(); ++v) {
    const std::uint32_t partition = cluster.vm_partition(v);
    if (v < 64) {
      EXPECT_EQ(partition, 0u) << "vm " << v;
      EXPECT_EQ(cluster.vm(v).capacity(), compute_vm) << "vm " << v;
    } else if (v < 72) {
      EXPECT_EQ(partition, 1u) << "vm " << v;
      EXPECT_EQ(cluster.vm(v).capacity(), bigmem_vm) << "vm " << v;
    } else {
      EXPECT_EQ(partition, 2u) << "vm " << v;
      EXPECT_EQ(cluster.vm(v).capacity(), burst_vm) << "vm " << v;
    }
  }

  // Every PM carries its class's capacity and its VMs point back at it.
  for (std::size_t p = 0; p < cluster.num_pms(); ++p) {
    const PhysicalMachine& pm = cluster.pm(p);
    for (const std::uint32_t vm_id : pm.vm_ids) {
      EXPECT_EQ(cluster.vm_partition(vm_id), pm.partition) << "pm " << p;
    }
  }

  EXPECT_EQ(cluster.partition_reserved_cap(0), 0u);
  EXPECT_EQ(cluster.partition_reserved_cap(1), 0u);
  EXPECT_EQ(cluster.partition_reserved_cap(2), 48u);

  // Workload generators size against the smallest VM carve.
  EXPECT_EQ(env.vm_capacity(), burst_vm);
  EXPECT_EQ(env.total_vms(), 112u);
}

TEST(HeterogeneousClusterTest, HomogeneousEnvironmentKeepsLegacyLayout) {
  const EnvironmentConfig env = EnvironmentConfig::PalmettoCluster();
  ASSERT_FALSE(env.heterogeneous());
  const Cluster cluster(env);
  EXPECT_EQ(cluster.num_vms(), 100u);
  EXPECT_EQ(cluster.num_partitions(), 1u);
  EXPECT_EQ(cluster.partition_reserved_cap(0), 0u);
  const trace::ResourceVector vm(8.0, 32.0, 360.0);
  for (std::size_t v = 0; v < cluster.num_vms(); ++v) {
    EXPECT_EQ(cluster.vm_partition(v), 0u) << "vm " << v;
    EXPECT_EQ(cluster.vm(v).capacity(), vm) << "vm " << v;
    EXPECT_EQ(cluster.pm(cluster.vm(v).pm_id()).partition, 0u) << "vm " << v;
  }
}

TEST(HeterogeneousClusterTest, HeterogeneousRunIsShardInvariant) {
  // The per-slot partition-reserved recount runs shard-locally and
  // merges serially; results must not depend on the shard layout.
  const EnvironmentConfig env = EnvironmentConfig::SlurmHeterogeneous();
  const trace::Trace training = tiny_trace(env, 60, 61);
  const trace::Trace eval = tiny_trace(env, 40, 62);

  const sim::SimulationResult serial =
      run_corp(env, 1, 1, training, eval);
  EXPECT_GT(serial.jobs_completed, 0u);

  const sim::SimulationResult sharded =
      run_corp(env, 8, 4, training, eval);
  EXPECT_EQ(serial.overall_utilization, sharded.overall_utilization);
  EXPECT_EQ(serial.slo_violation_rate, sharded.slo_violation_rate);
  EXPECT_EQ(serial.mean_stretch, sharded.mean_stretch);
  EXPECT_EQ(serial.jobs_completed, sharded.jobs_completed);
  EXPECT_EQ(serial.jobs_violated, sharded.jobs_violated);
  EXPECT_EQ(serial.reserved_placements, sharded.reserved_placements);
  EXPECT_EQ(serial.opportunistic_placements,
            sharded.opportunistic_placements);
  EXPECT_EQ(serial.lease_promotions, sharded.lease_promotions);
  EXPECT_EQ(serial.slots_simulated, sharded.slots_simulated);
}

TEST(HeterogeneousClusterTest, ReservedCapThrottlesAdmission) {
  // One partition whose cap allows a single concurrently reserved job:
  // admissions serialize, so far fewer reservations land than with the
  // cap lifted — while opportunistic placement keeps working. Both runs
  // are deterministic, so the comparison is stable.
  EnvironmentConfig capped;
  capped.name = "capped";
  NodeClass nodes;
  nodes.name = "only";
  nodes.num_pms = 2;
  nodes.vms_per_pm = 2;
  nodes.pm_capacity = trace::ResourceVector(16.0, 64.0, 720.0);
  nodes.max_reserved_jobs = 1;
  capped.partitions = {nodes};

  EnvironmentConfig uncapped = capped;
  uncapped.partitions[0].max_reserved_jobs = 0;

  const trace::Trace training = tiny_trace(capped, 60, 71);
  const trace::Trace eval = tiny_trace(capped, 50, 72);

  const sim::SimulationResult with_cap =
      run_corp(capped, 1, 1, training, eval);
  const sim::SimulationResult without_cap =
      run_corp(uncapped, 1, 1, training, eval);

  EXPECT_LT(with_cap.reserved_placements, without_cap.reserved_placements);
  EXPECT_GT(with_cap.reserved_placements, 0u);
  EXPECT_GT(with_cap.jobs_completed, 0u);

  // The cap also holds under sharding.
  const sim::SimulationResult with_cap_sharded =
      run_corp(capped, 4, 2, training, eval);
  EXPECT_EQ(with_cap.reserved_placements,
            with_cap_sharded.reserved_placements);
  EXPECT_EQ(with_cap.jobs_completed, with_cap_sharded.jobs_completed);
  EXPECT_EQ(with_cap.overall_utilization,
            with_cap_sharded.overall_utilization);
}

}  // namespace
}  // namespace corp::cluster
