#include "cluster/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corp::cluster {
namespace {

std::vector<AllocationSample> two_jobs() {
  // Job 1: allocated <2,4,10>, demand <1,2,5>.
  // Job 2: allocated <2,0,10>, demand <2,0,5>.
  return {
      {ResourceVector(2, 4, 10), ResourceVector(1, 2, 5)},
      {ResourceVector(2, 0, 10), ResourceVector(2, 0, 5)},
  };
}

TEST(MetricsTest, Eq1PerTypeUtilization) {
  const auto samples = two_jobs();
  EXPECT_DOUBLE_EQ(utilization(samples, ResourceKind::kCpu), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(utilization(samples, ResourceKind::kMemory), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(utilization(samples, ResourceKind::kStorage),
                   10.0 / 20.0);
}

TEST(MetricsTest, Eq1ZeroAllocationGivesZero) {
  std::vector<AllocationSample> none;
  EXPECT_DOUBLE_EQ(utilization(none, ResourceKind::kCpu), 0.0);
  std::vector<AllocationSample> zero_alloc{
      {ResourceVector::zero(), ResourceVector(1, 1, 1)}};
  EXPECT_DOUBLE_EQ(utilization(zero_alloc, ResourceKind::kCpu), 0.0);
}

TEST(MetricsTest, Eq2OverallWeighted) {
  const auto samples = two_jobs();
  ResourceWeights w;  // 0.4/0.4/0.2
  const double expected =
      (0.4 * 3.0 + 0.4 * 2.0 + 0.2 * 10.0) /
      (0.4 * 4.0 + 0.4 * 4.0 + 0.2 * 20.0);
  EXPECT_DOUBLE_EQ(overall_utilization(samples, w), expected);
}

TEST(MetricsTest, Eq3Wastage) {
  const auto samples = two_jobs();
  EXPECT_DOUBLE_EQ(wastage(samples, ResourceKind::kCpu), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(wastage(samples, ResourceKind::kStorage), 0.5);
}

TEST(MetricsTest, UtilizationPlusWastageIsOne) {
  // Eq. 1 + Eq. 3 are complementary by construction.
  const auto samples = two_jobs();
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto kind = static_cast<ResourceKind>(r);
    EXPECT_NEAR(utilization(samples, kind) + wastage(samples, kind), 1.0,
                1e-12);
  }
  ResourceWeights w;
  EXPECT_NEAR(overall_utilization(samples, w) + overall_wastage(samples, w),
              1.0, 1e-12);
}

TEST(MetricsTest, AccumulatorAveragesAcrossSlots) {
  SlotMetricsAccumulator acc;
  std::vector<AllocationSample> slot1{
      {ResourceVector(2, 2, 2), ResourceVector(1, 1, 1)}};  // 50%
  std::vector<AllocationSample> slot2{
      {ResourceVector(2, 2, 2), ResourceVector(2, 2, 2)}};  // 100%
  acc.observe_slot(slot1);
  acc.observe_slot(slot2);
  EXPECT_EQ(acc.slots_observed(), 2u);
  EXPECT_NEAR(acc.mean_utilization(ResourceKind::kCpu), 0.75, 1e-12);
  EXPECT_NEAR(acc.mean_overall_utilization(), 0.75, 1e-12);
  EXPECT_NEAR(acc.mean_wastage(ResourceKind::kCpu), 0.25, 1e-12);
  EXPECT_NEAR(acc.mean_overall_wastage(), 0.25, 1e-12);
}

TEST(MetricsTest, AccumulatorSkipsIdleSlots) {
  SlotMetricsAccumulator acc;
  acc.observe_slot({});  // no jobs -> skipped
  std::vector<AllocationSample> zero{
      {ResourceVector::zero(), ResourceVector::zero()}};
  acc.observe_slot(zero);  // zero allocation -> skipped
  EXPECT_EQ(acc.slots_observed(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean_overall_utilization(), 0.0);
}

TEST(MetricsTest, OpportunisticDemandCanExceedAllocation) {
  // An opportunistic job contributes demand with zero allocation; per-slot
  // utilization can exceed 1, reflecting overcommit.
  std::vector<AllocationSample> samples{
      {ResourceVector(2, 2, 2), ResourceVector(1, 1, 1)},
      {ResourceVector::zero(), ResourceVector(1.5, 1.5, 1.5)},
  };
  EXPECT_GT(utilization(samples, ResourceKind::kCpu), 1.0);
}

}  // namespace
}  // namespace corp::cluster
