// ShardPlan: deterministic contiguous partitions of the VM table, safe on
// every degenerate shape (zero VMs, one VM, more shards than VMs).
#include "cluster/sharding.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "cluster/cluster.hpp"

namespace corp::cluster {
namespace {

TEST(ShardPlanTest, PartitionsAreContiguousAndExhaustive) {
  for (const std::size_t num_vms : {1UL, 7UL, 100UL, 1024UL}) {
    for (const std::size_t shards : {1UL, 2UL, 3UL, 16UL}) {
      const ShardPlan plan(num_vms, shards);
      SCOPED_TRACE("vms=" + std::to_string(num_vms) +
                   " shards=" + std::to_string(shards));
      std::uint32_t next = 0;
      for (std::size_t s = 0; s < plan.num_shards(); ++s) {
        const ShardRange range = plan.range(s);
        EXPECT_EQ(range.begin, next);
        EXPECT_FALSE(range.empty());
        next = range.end;
        for (std::uint32_t v = range.begin; v < range.end; ++v) {
          EXPECT_EQ(plan.shard_of(v), s);
        }
      }
      EXPECT_EQ(next, num_vms);
    }
  }
}

TEST(ShardPlanTest, BlockSizesDifferByAtMostOne) {
  const ShardPlan plan(103, 16);
  std::size_t min_size = 103, max_size = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    min_size = std::min(min_size, plan.range(s).size());
    max_size = std::max(max_size, plan.range(s).size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlanTest, ZeroVmsYieldsOneEmptyShard) {
  const ShardPlan plan(0, 8);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_TRUE(plan.range(0).empty());
}

TEST(ShardPlanTest, RequestsClampIntoValidRange) {
  // 0 shards -> 1; more shards than VMs -> one VM per shard.
  EXPECT_EQ(ShardPlan(10, 0).num_shards(), 1u);
  const ShardPlan plan(3, 64);
  EXPECT_EQ(plan.num_shards(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(plan.range(s).size(), 1u);
  }
}

TEST(ShardPlanTest, OutOfRangeQueriesThrow) {
  const ShardPlan plan(10, 4);
  EXPECT_THROW(plan.range(4), std::out_of_range);
  EXPECT_THROW(plan.shard_of(10), std::out_of_range);
  EXPECT_THROW(ShardPlan(0, 1).shard_of(0), std::out_of_range);
}

TEST(ShardPlanTest, ClusterBlocksRoundTripThroughSpans) {
  EnvironmentConfig env = EnvironmentConfig::PalmettoCluster();
  Cluster cluster(env);  // 100 VMs
  const ShardPlan plan = cluster.shard_plan(7);
  std::size_t seen = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const auto block = cluster.vm_block(plan.range(s));
    EXPECT_EQ(block.size(), plan.range(s).size());
    for (const auto& vm : block) {
      EXPECT_EQ(vm.id(), seen);
      ++seen;
    }
  }
  EXPECT_EQ(seen, cluster.num_vms());
}

}  // namespace
}  // namespace corp::cluster
