#include "cluster/vm.hpp"

#include <gtest/gtest.h>

namespace corp::cluster {
namespace {

TEST(VmTest, ConstructionAndAccessors) {
  VirtualMachine vm(3, 1, ResourceVector(4.0, 16.0, 100.0));
  EXPECT_EQ(vm.id(), 3u);
  EXPECT_EQ(vm.pm_id(), 1u);
  EXPECT_EQ(vm.capacity(), ResourceVector(4.0, 16.0, 100.0));
  EXPECT_EQ(vm.committed(), ResourceVector::zero());
  EXPECT_EQ(vm.unallocated(), vm.capacity());
}

TEST(VmTest, RejectsNegativeCapacity) {
  EXPECT_THROW(VirtualMachine(0, 0, ResourceVector(-1.0, 1.0, 1.0)),
               std::invalid_argument);
}

TEST(VmTest, CommitReducesUnallocated) {
  VirtualMachine vm(0, 0, ResourceVector(4.0, 16.0, 100.0));
  vm.commit(ResourceVector(1.0, 4.0, 10.0));
  EXPECT_EQ(vm.unallocated(), ResourceVector(3.0, 12.0, 90.0));
  EXPECT_EQ(vm.committed(), ResourceVector(1.0, 4.0, 10.0));
}

TEST(VmTest, CanCommitChecksEveryComponent) {
  VirtualMachine vm(0, 0, ResourceVector(4.0, 16.0, 100.0));
  EXPECT_TRUE(vm.can_commit(ResourceVector(4.0, 16.0, 100.0)));
  EXPECT_FALSE(vm.can_commit(ResourceVector(4.1, 1.0, 1.0)));
  EXPECT_FALSE(vm.can_commit(ResourceVector(1.0, 17.0, 1.0)));
}

TEST(VmTest, OverCommitThrows) {
  VirtualMachine vm(0, 0, ResourceVector(1.0, 1.0, 1.0));
  vm.commit(ResourceVector(0.8, 0.8, 0.8));
  EXPECT_THROW(vm.commit(ResourceVector(0.3, 0.0, 0.0)),
               std::runtime_error);
}

TEST(VmTest, ReleaseReturnsResources) {
  VirtualMachine vm(0, 0, ResourceVector(2.0, 2.0, 2.0));
  vm.commit(ResourceVector(1.5, 1.5, 1.5));
  vm.release(ResourceVector(0.5, 0.5, 0.5));
  EXPECT_EQ(vm.committed(), ResourceVector(1.0, 1.0, 1.0));
}

TEST(VmTest, ReleaseClampsAtZero) {
  VirtualMachine vm(0, 0, ResourceVector(2.0, 2.0, 2.0));
  vm.commit(ResourceVector(0.5, 0.5, 0.5));
  vm.release(ResourceVector(1.0, 1.0, 1.0));
  EXPECT_EQ(vm.committed(), ResourceVector::zero());
}

TEST(VmTest, RepeatedCommitReleaseCycleStable) {
  VirtualMachine vm(0, 0, ResourceVector(4.0, 4.0, 4.0));
  const ResourceVector amount(0.3, 0.7, 1.1);
  for (int i = 0; i < 1000; ++i) {
    vm.commit(amount);
    vm.release(amount);
  }
  EXPECT_NEAR(vm.committed().total(), 0.0, 1e-9);
  EXPECT_TRUE(vm.can_commit(vm.capacity()));
}

TEST(VmTest, CommittedFractionWeighted) {
  VirtualMachine vm(0, 0, ResourceVector(10.0, 10.0, 10.0));
  vm.commit(ResourceVector(5.0, 5.0, 5.0));
  trace::ResourceWeights weights;
  EXPECT_NEAR(vm.committed_fraction(weights), 0.5, 1e-12);
}

}  // namespace
}  // namespace corp::cluster
