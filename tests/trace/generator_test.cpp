#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace corp::trace {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig config;
  config.num_jobs = 40;
  config.horizon_slots = 50;
  return config;
}

TEST(GeneratorTest, Deterministic) {
  GoogleTraceGenerator gen(small_config());
  util::Rng a(9), b(9);
  const Trace ta = gen.generate(a);
  const Trace tb = gen.generate(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.jobs()[i].request, tb.jobs()[i].request);
    EXPECT_EQ(ta.jobs()[i].duration_slots, tb.jobs()[i].duration_slots);
    EXPECT_EQ(ta.jobs()[i].submit_slot, tb.jobs()[i].submit_slot);
  }
}

TEST(GeneratorTest, TaskFanOutProducesAtLeastOnePerJob) {
  GoogleTraceGenerator gen(small_config());
  util::Rng rng(9);
  const Trace trace = gen.generate(rng);
  EXPECT_GE(trace.size(), small_config().num_jobs);
}

TEST(GeneratorTest, AllJobsValid) {
  GoogleTraceGenerator gen(small_config());
  util::Rng rng(1);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    EXPECT_TRUE(job.valid()) << "job " << job.id;
  }
}

TEST(GeneratorTest, AllJobsShortLived) {
  GoogleTraceGenerator gen(small_config());
  util::Rng rng(2);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    EXPECT_TRUE(job.is_short_lived());
  }
}

TEST(GeneratorTest, SubmitSlotsWithinHorizon) {
  GeneratorConfig config = small_config();
  config.horizon_slots = 17;
  GoogleTraceGenerator gen(config);
  util::Rng rng(3);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    EXPECT_GE(job.submit_slot, 0);
    EXPECT_LT(job.submit_slot, 17);
  }
}

TEST(GeneratorTest, RequestCapRespected) {
  GeneratorConfig config = small_config();
  config.request_cap = ResourceVector(1.0, 2.0, 20.0);
  GoogleTraceGenerator gen(config);
  util::Rng rng(4);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    EXPECT_TRUE(job.request.fits_within(config.request_cap));
  }
}

TEST(GeneratorTest, UsageNeverExceedsRequest) {
  GoogleTraceGenerator gen(small_config());
  util::Rng rng(5);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    for (const auto& u : job.usage) {
      EXPECT_TRUE(u.fits_within(job.request, 1e-9));
    }
  }
}

TEST(GeneratorTest, MeanUtilizationRoughlyMatchesConfig) {
  GeneratorConfig config = small_config();
  config.num_jobs = 300;
  GoogleTraceGenerator gen(config);
  util::Rng rng(6);
  const Trace trace = gen.generate(rng);
  double sum = 0.0;
  std::size_t n = 0;
  for (const Job& job : trace.jobs()) {
    for (const auto& u : job.usage) {
      if (job.request.cpu() > 0) {
        sum += u.cpu() / job.request.cpu();
        ++n;
      }
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(n), config.mean_utilization, 0.08);
}

TEST(GeneratorTest, UtilizationSeriesBounded) {
  GoogleTraceGenerator gen(small_config());
  util::Rng rng(7);
  const auto series = gen.generate_utilization_series(500, rng);
  ASSERT_EQ(series.size(), 500u);
  for (double u : series) {
    EXPECT_GE(u, small_config().min_utilization);
    EXPECT_LE(u, 1.0);
  }
}

TEST(GeneratorTest, UtilizationSeriesFluctuates) {
  GoogleTraceGenerator gen(small_config());
  util::Rng rng(8);
  const auto series = gen.generate_utilization_series(500, rng);
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  // Peaks and valleys should occur over 500 slots.
  EXPECT_GT(hi, 0.8);
  EXPECT_LT(lo, 0.35);
}

TEST(GeneratorTest, ClassMixRespected) {
  GeneratorConfig config = small_config();
  config.num_jobs = 400;
  config.class_mix = {1.0, 0.0, 0.0, 0.0};
  GoogleTraceGenerator gen(config);
  util::Rng rng(10);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    EXPECT_EQ(job.job_class, JobClass::kCpuIntensive);
  }
}

TEST(GeneratorTest, DominantMatchesClass) {
  GeneratorConfig config = small_config();
  config.num_jobs = 200;
  config.request_jitter_sigma = 0.0;  // no jitter -> deterministic dominance
  GoogleTraceGenerator gen(config);
  util::Rng rng(11);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    if (job.job_class == JobClass::kCpuIntensive) {
      // CPU-high: dominance is by normalized magnitude only when compared
      // within comparable units; here we simply check the CPU request is
      // at the configured high level.
      EXPECT_NEAR(job.request.cpu(), config.cpu_request_high,
                  config.cpu_request_high * 1e-9);
    }
  }
}

TEST(GeneratorTest, RejectsInvalidConfig) {
  GeneratorConfig config = small_config();
  config.num_jobs = 0;
  EXPECT_THROW(GoogleTraceGenerator{config}, std::invalid_argument);
  config = small_config();
  config.horizon_slots = 0;
  EXPECT_THROW(GoogleTraceGenerator{config}, std::invalid_argument);
  config = small_config();
  config.mean_utilization = 0.0;
  EXPECT_THROW(GoogleTraceGenerator{config}, std::invalid_argument);
  config = small_config();
  config.max_duration_slots = 0;
  EXPECT_THROW(GoogleTraceGenerator{config}, std::invalid_argument);
}

TEST(GeneratorTest, TasksOfAJobShareSubmitSlot) {
  GeneratorConfig config = small_config();
  config.num_jobs = 1;
  GoogleTraceGenerator gen(config);
  util::Rng rng(12);
  const Trace trace = gen.generate(rng);
  for (const Job& job : trace.jobs()) {
    EXPECT_EQ(job.submit_slot, trace.jobs()[0].submit_slot);
  }
}

}  // namespace
}  // namespace corp::trace
