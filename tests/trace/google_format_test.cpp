#include "trace/google_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace corp::trace {
namespace {

// task_events rows: timestamp, missing, job_id, task_index, machine_id,
// event_type, user, class, priority, cpu_req, mem_req, disk_req.
constexpr const char* kEvents =
    "0,,100,0,5,0,u,2,0,0.05,0.02,0.001\n"
    "600000000,,100,1,5,0,u,2,0,0.10,0.03,0.002\n"
    "0,,100,0,5,1,u,2,0,,,\n"           // SCHEDULE event: ignored
    "0,,200,0,6,0,u,2,0,0.50,0.50,0.01\n";  // no usage -> dropped

// task_usage rows: start, end, job_id, task_index, machine, mean_cpu,
// canonical_mem, ..., mean_disk_space at index 12.
constexpr const char* kUsage =
    "0,300000000,100,0,5,0.02,0.01,0,0,0,0,0,0.0005\n"
    "300000000,600000000,100,0,5,0.03,0.012,0,0,0,0,0,0.0005\n"
    "600000000,900000000,100,1,5,0.05,0.02,0,0,0,0,0,0.001\n";

TEST(GoogleFormatTest, ParsesEvents) {
  std::istringstream in(kEvents);
  const auto events = read_task_events(in);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].job_id, 100u);
  EXPECT_EQ(events[0].event_type, 0);
  EXPECT_DOUBLE_EQ(events[0].cpu_request, 0.05);
  EXPECT_EQ(events[2].event_type, 1);
  EXPECT_DOUBLE_EQ(events[2].cpu_request, 0.0);  // empty field -> 0
}

TEST(GoogleFormatTest, ParsesUsage) {
  std::istringstream in(kUsage);
  const auto usage = read_task_usage(in);
  ASSERT_EQ(usage.size(), 3u);
  EXPECT_EQ(usage[0].end_time_us, 300000000);
  EXPECT_DOUBLE_EQ(usage[0].mean_cpu, 0.02);
  EXPECT_DOUBLE_EQ(usage[0].mean_disk_space, 0.0005);
}

TEST(GoogleFormatTest, RejectsMalformedRows) {
  std::istringstream bad_events("1,2,3\n");
  EXPECT_THROW(read_task_events(bad_events), std::runtime_error);
  std::istringstream bad_usage("1,2\n");
  EXPECT_THROW(read_task_usage(bad_usage), std::runtime_error);
}

TEST(GoogleFormatTest, BuildsJobsFromJoin) {
  std::istringstream events_in(kEvents);
  std::istringstream usage_in(kUsage);
  const auto events = read_task_events(events_in);
  const auto usage = read_task_usage(usage_in);
  GoogleFormatConfig config;
  config.max_duration_slots = 0;  // keep everything
  util::Rng rng(1);
  const Trace trace = build_trace(events, usage, config, rng);
  // Task (100,0) has 2 usage windows, (100,1) has 1; job 200 has none.
  ASSERT_EQ(trace.size(), 2u);
  for (const auto& job : trace.jobs()) {
    EXPECT_TRUE(job.valid()) << "job " << job.id;
  }
}

TEST(GoogleFormatTest, ResamplesFiveMinuteWindows) {
  std::istringstream events_in(kEvents);
  std::istringstream usage_in(kUsage);
  const auto events = read_task_events(events_in);
  const auto usage = read_task_usage(usage_in);
  GoogleFormatConfig config;
  config.max_duration_slots = 0;
  util::Rng rng(1);
  const Trace trace = build_trace(events, usage, config, rng);
  // Two 5-minute windows -> (2-1)*30 + 1 = 31 fine slots; one window -> 30.
  std::vector<std::size_t> durations;
  for (const auto& job : trace.jobs()) durations.push_back(job.duration_slots);
  std::sort(durations.begin(), durations.end());
  EXPECT_EQ(durations[0], 30u);
  EXPECT_EQ(durations[1], 31u);
}

TEST(GoogleFormatTest, ScalesByMachineConstants) {
  std::istringstream events_in(kEvents);
  std::istringstream usage_in(kUsage);
  const auto events = read_task_events(events_in);
  const auto usage = read_task_usage(usage_in);
  GoogleFormatConfig config;
  config.max_duration_slots = 0;
  config.cpu_scale_cores = 16.0;
  util::Rng rng(1);
  const Trace trace = build_trace(events, usage, config, rng);
  // Task (100,0) requested 0.05 normalized CPU -> 0.8 cores.
  const Job& first = trace.jobs().front();
  EXPECT_NEAR(first.request.cpu(), 0.05 * 16.0, 1e-9);
}

TEST(GoogleFormatTest, LongTaskFilter) {
  // With the default 30-slot cap, task (100,0)'s two usage windows (31
  // fine slots) exceed the cap and are dropped; task (100,1)'s single
  // window (exactly 30 slots) survives.
  std::istringstream events_in(kEvents);
  std::istringstream usage_in(kUsage);
  const auto events = read_task_events(events_in);
  const auto usage = read_task_usage(usage_in);
  GoogleFormatConfig config;  // default cap = 30 slots
  util::Rng rng(1);
  const Trace trace = build_trace(events, usage, config, rng);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.jobs()[0].duration_slots, 30u);
}

TEST(GoogleFormatTest, GapsFilledWithPreviousRecord) {
  // Windows at t=0 and t=600s (gap at 300s) -> three coarse samples.
  std::istringstream events_in("0,,7,0,1,0,u,2,0,0.1,0.1,0.01\n");
  std::istringstream usage_in(
      "0,300000000,7,0,1,0.02,0.01,0,0,0,0,0,0.001\n"
      "600000000,900000000,7,0,1,0.04,0.02,0,0,0,0,0,0.002\n");
  const auto events = read_task_events(events_in);
  const auto usage = read_task_usage(usage_in);
  GoogleFormatConfig config;
  config.max_duration_slots = 0;
  util::Rng rng(1);
  const Trace trace = build_trace(events, usage, config, rng);
  ASSERT_EQ(trace.size(), 1u);
  // 3 coarse samples -> (3-1)*30+1 = 61 fine slots.
  EXPECT_EQ(trace.jobs()[0].duration_slots, 61u);
}

TEST(GoogleFormatTest, MissingFilesThrow) {
  GoogleFormatConfig config;
  util::Rng rng(1);
  EXPECT_THROW(
      load_google_trace("/nonexistent/events.csv", "/nonexistent/usage.csv",
                        config, rng),
      std::runtime_error);
}

}  // namespace
}  // namespace corp::trace
