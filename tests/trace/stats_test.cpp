#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace corp::trace {
namespace {

Job flat_job(std::uint64_t id, std::int64_t submit, std::size_t duration,
             JobClass cls = JobClass::kBalanced) {
  Job job;
  job.id = id;
  job.submit_slot = submit;
  job.duration_slots = duration;
  job.job_class = cls;
  job.request = ResourceVector(2.0, 4.0, 10.0);
  job.usage.assign(duration, ResourceVector(1.0, 2.0, 5.0));
  return job;
}

TEST(TraceStatsTest, EmptyTrace) {
  const TraceStats stats = compute_stats(Trace{});
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.peak_concurrency, 0u);
  EXPECT_EQ(stats.duration_seconds.count, 0u);
}

TEST(TraceStatsTest, CountsAndClasses) {
  Trace trace;
  trace.add(flat_job(1, 0, 5, JobClass::kCpuIntensive));
  trace.add(flat_job(2, 0, 5, JobClass::kCpuIntensive));
  trace.add(flat_job(3, 0, 40, JobClass::kBalanced));  // long-lived
  trace.sort();
  const TraceStats stats = compute_stats(trace);
  EXPECT_EQ(stats.tasks, 3u);
  EXPECT_EQ(stats.class_histogram[0], 2u);
  EXPECT_EQ(stats.class_histogram[3], 1u);
  EXPECT_EQ(stats.short_lived, 2u);
  EXPECT_EQ(stats.long_lived, 1u);
}

TEST(TraceStatsTest, UtilizationFraction) {
  Trace trace;
  trace.add(flat_job(1, 0, 4));  // demand = request/2 on every type
  trace.sort();
  const TraceStats stats = compute_stats(trace);
  EXPECT_NEAR(stats.utilization_fraction.mean, 0.5, 1e-12);
  EXPECT_NEAR(stats.unused_fraction.mean, 0.5, 1e-12);
}

TEST(TraceStatsTest, PeakConcurrencySweep) {
  Trace trace;
  trace.add(flat_job(1, 0, 4));   // [0, 4)
  trace.add(flat_job(2, 2, 4));   // [2, 6)   overlap with 1 and 3
  trace.add(flat_job(3, 3, 4));   // [3, 7)
  trace.add(flat_job(4, 10, 2));  // isolated
  trace.sort();
  const TraceStats stats = compute_stats(trace);
  EXPECT_EQ(stats.peak_concurrency, 3u);
}

TEST(TraceStatsTest, BackToBackJobsDoNotOverlap) {
  Trace trace;
  trace.add(flat_job(1, 0, 4));  // [0, 4)
  trace.add(flat_job(2, 4, 4));  // [4, 8)
  trace.sort();
  EXPECT_EQ(compute_stats(trace).peak_concurrency, 1u);
}

TEST(TraceStatsTest, DurationInSeconds) {
  Trace trace;
  trace.add(flat_job(1, 0, 6));  // 6 slots x 10 s
  trace.sort();
  EXPECT_DOUBLE_EQ(compute_stats(trace).duration_seconds.mean, 60.0);
}

TEST(TraceStatsTest, PrintRendersAllSections) {
  GeneratorConfig config;
  config.num_jobs = 20;
  config.horizon_slots = 10;
  GoogleTraceGenerator gen(config);
  util::Rng rng(5);
  const Trace trace = gen.generate(rng);
  std::ostringstream out;
  print_stats(compute_stats(trace), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("peak concurrency"), std::string::npos);
  EXPECT_NE(text.find("cpu-intensive"), std::string::npos);
  EXPECT_NE(text.find("unused fraction"), std::string::npos);
}

}  // namespace
}  // namespace corp::trace
