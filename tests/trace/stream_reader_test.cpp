// Pins trace::StreamReader's two contracts:
//
//  * determinism — the emitted job stream is bit-identical for every
//    chunk size, batch size and worker count (chunk boundaries are pure
//    byte offsets; rows re-merge in file order before assembly);
//  * diagnostics — malformed input fails fast with the 1-based file line
//    and offending field, in the read_trace_csv convention, and the
//    error text itself is chunking-invariant.
//
// Plus the windowing semantics real downloads depend on: split
// sub-window records merge, skipped windows gap-fill, long tasks drop or
// segment per policy, and safe_submit_slot() is a true lower bound.
#include "trace/stream_reader.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "../common/trace_fixture.hpp"
#include "trace/job.hpp"
#include "util/thread_pool.hpp"

namespace corp::trace {
namespace {

using testfix::kEpochUs;
using testfix::kWindowUs;

std::string write_file(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  return path;
}

/// Exact job-stream equality — the contract is bit identity, so doubles
/// compare with ==, not tolerance.
void expect_same_trace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Job& x = a.jobs()[i];
    const Job& y = b.jobs()[i];
    EXPECT_EQ(x.id, y.id) << "job " << i;
    EXPECT_EQ(x.submit_slot, y.submit_slot) << "job " << i;
    EXPECT_EQ(x.duration_slots, y.duration_slots) << "job " << i;
    EXPECT_EQ(x.slo_stretch, y.slo_stretch) << "job " << i;
    for (std::size_t r = 0; r < kNumResources; ++r) {
      EXPECT_EQ(x.request[r], y.request[r]) << "job " << i;
    }
    ASSERT_EQ(x.usage.size(), y.usage.size()) << "job " << i;
    for (std::size_t t = 0; t < x.usage.size(); ++t) {
      for (std::size_t r = 0; r < kNumResources; ++r) {
        EXPECT_EQ(x.usage[t][r], y.usage[t][r])
            << "job " << i << " slot " << t;
      }
    }
  }
}

TEST(StreamReaderTest, ChunkingAndThreadingAreBitIdentical) {
  const std::string path = testing::TempDir() + "/stream_invariance.csv";
  testfix::write_google_fixture(path, 6, 80, 97);

  StreamReaderConfig reference_config;
  const Trace reference = StreamReader::read_all(path, reference_config);
  ASSERT_GT(reference.size(), 0u);

  for (const std::size_t chunk_bytes : {4096UL, 10'000UL, 1UL << 16}) {
    for (const std::size_t chunks_per_batch : {1UL, 3UL}) {
      SCOPED_TRACE("chunk_bytes=" + std::to_string(chunk_bytes) +
                   " chunks_per_batch=" + std::to_string(chunks_per_batch));
      StreamReaderConfig config;
      config.chunk_bytes = chunk_bytes;
      config.chunks_per_batch = chunks_per_batch;
      expect_same_trace(reference, StreamReader::read_all(path, config));
    }
  }

  util::ThreadPool pool(4);
  StreamReaderConfig parallel_config;
  parallel_config.chunk_bytes = 8192;
  expect_same_trace(reference,
                    StreamReader::read_all(path, parallel_config, &pool));
}

TEST(StreamReaderTest, SplitSubWindowRecordsMergeIntoOneWindow) {
  // Task 7 reports its window as two half-window records; task 8 as one
  // whole-window record. Both must come out as one-coarse-window jobs.
  const std::int64_t half = kEpochUs + kWindowUs / 2;
  const std::string path = write_file(
      "stream_split.csv",
      "#corp-trace schema=google-v2\n" +
          testfix::google_row(kEpochUs, half, 7, 0.010, 0.008, 0.0005) +
          testfix::google_row(kEpochUs, kEpochUs + kWindowUs, 8, 0.012,
                              0.006, 0.0004) +
          testfix::google_row(half, kEpochUs + kWindowUs, 7, 0.020, 0.008,
                              0.0005));

  StreamReaderConfig config;
  StreamReader reader(path, config);
  while (reader.advance()) {
  }
  const std::vector<Job> jobs = reader.take_ready();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(reader.stats().rows_parsed, 3u);
  EXPECT_EQ(reader.stats().tasks_opened, 2u);
  EXPECT_EQ(reader.stats().gap_fills, 0u);
  for (const Job& job : jobs) {
    EXPECT_EQ(job.submit_slot, 0);
    EXPECT_EQ(job.usage.size(), job.duration_slots);
    EXPECT_LE(job.duration_slots, kShortJobMaxSlots);
  }
  // The two jobs cover the same single window, so identical durations.
  EXPECT_EQ(jobs[0].duration_slots, jobs[1].duration_slots);
}

TEST(StreamReaderTest, SkippedWindowsAreGapFilled) {
  // Task 5 reports windows 0 and 2 but not 1 — the trace omits windows
  // with unchanged usage, so the reader must repeat window 0 across the
  // gap. Task 6 is a plain single-window control.
  const std::string body =
      "#corp-trace schema=google-v2\n" +
      testfix::google_row(kEpochUs, kEpochUs + kWindowUs, 5, 0.010, 0.008,
                          0.0005) +
      testfix::google_row(kEpochUs, kEpochUs + kWindowUs, 6, 0.012, 0.006,
                          0.0004) +
      testfix::google_row(kEpochUs + 2 * kWindowUs,
                          kEpochUs + 3 * kWindowUs, 5, 0.016, 0.008,
                          0.0005);
  const std::string path = write_file("stream_gap.csv", body);

  // Under kDrop the gap fill fires first (making the task long), then
  // the drop policy discards it — the paper's preprocessing.
  StreamReaderConfig drop;
  StreamReader drop_reader(path, drop);
  while (drop_reader.advance()) {
  }
  EXPECT_EQ(drop_reader.stats().gap_fills, 1u);
  EXPECT_EQ(drop_reader.stats().jobs_dropped_long, 1u);
  EXPECT_EQ(drop_reader.take_ready().size(), 1u);  // task 6 survives

  // Under kSegment with room for two windows per segment, the filled
  // window materializes: three windows of usage survive in total.
  StreamReaderConfig segment;
  segment.long_tasks = LongTaskPolicy::kSegment;
  segment.google.max_duration_slots = 2 * kShortJobMaxSlots;
  const Trace trace = StreamReader::read_all(path, segment);

  StreamReader seg_reader(path, segment);
  while (seg_reader.advance()) {
  }
  EXPECT_EQ(seg_reader.stats().gap_fills, 1u);
  EXPECT_GE(seg_reader.stats().jobs_segmented, 1u);

  std::size_t total_slots = 0;
  for (const Job& job : trace.jobs()) {
    EXPECT_LE(job.duration_slots, 2 * kShortJobMaxSlots);
    total_slots += job.usage.size();
  }
  // Task 5 = a two-window segment (interpolated to (2-1)*30+1 = 31 fine
  // slots, window 1 being the fill) plus a one-window tail (30); task 6
  // is one window (30).
  EXPECT_EQ(total_slots, 3u * kShortJobMaxSlots + 1u);
}

TEST(StreamReaderTest, LongTaskPolicyDropsOrSegments) {
  // Task 3 spans two windows (too long for the short-job filter); task 4
  // fits in one.
  const std::string body =
      "#corp-trace schema=google-v2\n" +
      testfix::google_row(kEpochUs, kEpochUs + kWindowUs, 3, 0.010, 0.008,
                          0.0005) +
      testfix::google_row(kEpochUs, kEpochUs + kWindowUs, 4, 0.012, 0.006,
                          0.0004) +
      testfix::google_row(kEpochUs + kWindowUs, kEpochUs + 2 * kWindowUs,
                          3, 0.014, 0.008, 0.0005);
  const std::string path = write_file("stream_long.csv", body);

  StreamReaderConfig drop;
  drop.long_tasks = LongTaskPolicy::kDrop;
  const Trace dropped = StreamReader::read_all(path, drop);
  EXPECT_EQ(dropped.size(), 1u);

  StreamReader drop_reader(path, drop);
  while (drop_reader.advance()) {
  }
  EXPECT_EQ(drop_reader.stats().jobs_dropped_long, 1u);
  EXPECT_EQ(drop_reader.stats().jobs_segmented, 0u);

  StreamReaderConfig segment;
  segment.long_tasks = LongTaskPolicy::kSegment;
  const Trace segmented = StreamReader::read_all(path, segment);
  EXPECT_GT(segmented.size(), 2u);
  std::size_t total_slots = 0;
  for (const Job& job : segmented.jobs()) {
    EXPECT_LE(job.duration_slots, kShortJobMaxSlots);
    total_slots += job.usage.size();
  }
  EXPECT_EQ(total_slots, 3u * kShortJobMaxSlots);
}

TEST(StreamReaderTest, SafeSubmitSlotIsAMonotoneLowerBound) {
  const std::string path = testing::TempDir() + "/stream_watermark.csv";
  testfix::write_google_fixture(path, 8, 40, 13);

  StreamReaderConfig config;
  config.chunk_bytes = 4096;  // Many batches, so the bound moves often.
  config.chunks_per_batch = 1;
  StreamReader reader(path, config);

  std::int64_t previous_bound = 0;
  std::size_t jobs_taken = 0;
  bool more = true;
  while (more) {
    more = reader.advance();
    for (const Job& job : reader.take_ready()) {
      // Jobs emitted by this advance were "not yet emitted" before it,
      // so the bound published then must not exceed their submit slots.
      EXPECT_GE(job.submit_slot, previous_bound);
      ++jobs_taken;
    }
    EXPECT_GE(reader.safe_submit_slot(), previous_bound);
    previous_bound = reader.safe_submit_slot();
  }
  EXPECT_TRUE(reader.exhausted());
  EXPECT_GT(jobs_taken, 0u);
  EXPECT_GT(reader.stats().batches_mapped, 1u);
  EXPECT_EQ(reader.safe_submit_slot(),
            std::numeric_limits<std::int64_t>::max());
}

TEST(StreamReaderTest, AzureReadingsSegmentIntoShortJobs) {
  const std::int64_t epoch_s = kEpochUs / 1'000'000;
  std::string body = "#corp-trace schema=azure-vm\n";
  for (int window = 0; window < 4; ++window) {
    body += std::to_string(epoch_s + window * 300) +
            ",vm-a,10.0,40.0,25.0\n";
  }
  const std::string path = write_file("stream_azure.csv", body);

  StreamReaderConfig config;
  config.schema = TraceSchema::kAzureVm;
  config.long_tasks = LongTaskPolicy::kSegment;
  const Trace trace = StreamReader::read_all(path, config);
  ASSERT_GT(trace.size(), 1u);
  std::size_t total_slots = 0;
  for (const Job& job : trace.jobs()) {
    EXPECT_LE(job.duration_slots, kShortJobMaxSlots);
    total_slots += job.usage.size();
    // 25% of a 16-core machine = 4 cores feeds the resampled usage.
    EXPECT_GT(job.request.cpu(), 0.0);
  }
  EXPECT_EQ(total_slots, 4u * kShortJobMaxSlots);
}

// --- malformed input ----------------------------------------------------

/// Captures the diagnostic so the negative tests can pin that every
/// parse error names the 1-based file line and the offending field.
std::string stream_error(const std::string& path,
                         const StreamReaderConfig& config,
                         util::ThreadPool* pool = nullptr) {
  try {
    StreamReader::read_all(path, config, pool);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected streaming ingest of " << path << " to throw";
  return {};
}

const std::string kGoodRow = testfix::google_row(
    kEpochUs, kEpochUs + kWindowUs, 11, 0.010, 0.008, 0.0005);

TEST(StreamReaderTest, TruncatedRowNamesLineAndField) {
  const std::string path = write_file(
      "stream_truncated.csv",
      "#corp-trace schema=google-v2\n" + kGoodRow + "600000000,900000000,12,0\n");
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("'row'"), std::string::npos) << message;
  EXPECT_NE(message.find("too few columns"), std::string::npos) << message;
}

TEST(StreamReaderTest, CrlfLineEndingRejected) {
  const std::string path = write_file(
      "stream_crlf.csv",
      "#corp-trace schema=google-v2\n600000000,900000000,11,0,11,0.01,"
      "0.008,0,0,0,0,0,0.0005\r\n");
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("CRLF"), std::string::npos) << message;
}

TEST(StreamReaderTest, QuotedFieldRejected) {
  const std::string path = write_file(
      "stream_quoted.csv",
      "#corp-trace schema=google-v2\n600000000,900000000,\"11\",0,11,0.01,"
      "0.008,0,0,0,0,0,0.0005\n");
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("'job_id'"), std::string::npos) << message;
  EXPECT_NE(message.find("quoted field"), std::string::npos) << message;
}

TEST(StreamReaderTest, OutOfOrderTimestampRejected) {
  const std::string path = write_file(
      "stream_order.csv",
      "#corp-trace schema=google-v2\n" + kGoodRow +
          testfix::google_row(kEpochUs - kWindowUs, kEpochUs, 12, 0.01,
                              0.008, 0.0005));
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("'start_time'"), std::string::npos) << message;
  EXPECT_NE(message.find("out-of-order timestamp"), std::string::npos)
      << message;
}

TEST(StreamReaderTest, UnknownSchemaVersionRejected) {
  const std::string path = write_file(
      "stream_badschema.csv", "#corp-trace schema=google-v9\n" + kGoodRow);
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("'schema'"), std::string::npos) << message;
  EXPECT_NE(message.find("unknown schema version"), std::string::npos)
      << message;
}

TEST(StreamReaderTest, SchemaMismatchRejected) {
  const std::string path = write_file(
      "stream_mismatch.csv", "#corp-trace schema=azure-vm\n" + kGoodRow);
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("schema mismatch"), std::string::npos) << message;
}

TEST(StreamReaderTest, UnrecognizedDirectiveRejected) {
  const std::string path =
      write_file("stream_directive.csv", "#corp-trace fmt=v2\n" + kGoodRow);
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("'directive'"), std::string::npos) << message;
}

TEST(StreamReaderTest, OverlongLineRejected) {
  StreamReaderConfig config;
  config.max_line_bytes = 64;
  const std::string path = write_file(
      "stream_overlong.csv", "#corp-trace schema=google-v2\n" + kGoodRow +
                                 std::string(200, '1') + "\n");
  const std::string message = stream_error(path, config);
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("max_line_bytes"), std::string::npos) << message;
}

TEST(StreamReaderTest, NonNumericUsageRejected) {
  const std::string path = write_file(
      "stream_nonnumeric.csv",
      "#corp-trace schema=google-v2\n600000000,900000000,11,0,11,banana,"
      "0.008,0,0,0,0,0,0.0005\n");
  const std::string message = stream_error(path, {});
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("'mean_cpu'"), std::string::npos) << message;
  EXPECT_NE(message.find("banana"), std::string::npos) << message;
}

TEST(StreamReaderTest, AzurePercentOutOfRangeRejected) {
  StreamReaderConfig config;
  config.schema = TraceSchema::kAzureVm;
  const std::string path = write_file("stream_azure_pct.csv",
                                      "600,vm-a,10.0,40.0,250.0\n");
  const std::string message = stream_error(path, config);
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("'avg_cpu'"), std::string::npos) << message;
  EXPECT_NE(message.find("out of range"), std::string::npos) << message;
}

TEST(StreamReaderTest, MissingFileThrows) {
  EXPECT_THROW(StreamReader("/nonexistent/trace.csv", {}),
               std::runtime_error);
}

TEST(StreamReaderTest, DiagnosticsAreChunkingInvariant) {
  // A malformed row mid-file must produce the same message — same global
  // line number included — no matter how chunks slice the file, because
  // per-chunk errors are deferred and rebased during the in-order merge.
  const std::string path = testing::TempDir() + "/stream_error_det.csv";
  testfix::write_google_fixture(path, 4, 40, 31);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "not,a,valid,row\n";
  }

  StreamReaderConfig serial;
  serial.chunk_bytes = 4096;
  const std::string reference = stream_error(path, serial);
  EXPECT_NE(reference.find("read_trace_stream: line"), std::string::npos)
      << reference;

  util::ThreadPool pool(4);
  StreamReaderConfig parallel;
  parallel.chunk_bytes = 1536;
  parallel.chunks_per_batch = 3;
  EXPECT_EQ(stream_error(path, parallel, &pool), reference);
}

}  // namespace
}  // namespace corp::trace
