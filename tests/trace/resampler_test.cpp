#include "trace/resampler.hpp"

#include <gtest/gtest.h>

namespace corp::trace {
namespace {

TEST(ResamplerTest, OutputLengthMatchesFormula) {
  util::Rng rng(1);
  ResampleConfig config;
  config.slots_per_sample = 30;
  const std::vector<double> coarse{1.0, 2.0, 3.0};
  const auto fine = resample_series(coarse, config, rng);
  EXPECT_EQ(fine.size(), (coarse.size() - 1) * 30 + 1);
}

TEST(ResamplerTest, PassesThroughAnchors) {
  util::Rng rng(1);
  ResampleConfig config;
  config.slots_per_sample = 10;
  config.jitter_fraction = 0.0;
  const std::vector<double> coarse{1.0, 2.0, 4.0};
  const auto fine = resample_series(coarse, config, rng);
  EXPECT_DOUBLE_EQ(fine[0], 1.0);
  EXPECT_DOUBLE_EQ(fine[10], 2.0);
  EXPECT_DOUBLE_EQ(fine.back(), 4.0);
}

TEST(ResamplerTest, LinearWithoutJitter) {
  util::Rng rng(1);
  ResampleConfig config;
  config.slots_per_sample = 4;
  config.jitter_fraction = 0.0;
  const std::vector<double> coarse{0.0, 4.0};
  const auto fine = resample_series(coarse, config, rng);
  ASSERT_EQ(fine.size(), 5u);
  EXPECT_DOUBLE_EQ(fine[1], 1.0);
  EXPECT_DOUBLE_EQ(fine[3], 3.0);
}

TEST(ResamplerTest, JitterPerturbsInteriorOnly) {
  util::Rng rng(7);
  ResampleConfig config;
  config.slots_per_sample = 10;
  config.jitter_fraction = 0.2;
  const std::vector<double> coarse{5.0, 5.0};
  const auto fine = resample_series(coarse, config, rng);
  EXPECT_DOUBLE_EQ(fine[0], 5.0);
  EXPECT_DOUBLE_EQ(fine.back(), 5.0);
  bool any_different = false;
  for (std::size_t i = 1; i + 1 < fine.size(); ++i) {
    if (fine[i] != 5.0) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(ResamplerTest, FloorEnforced) {
  util::Rng rng(7);
  ResampleConfig config;
  config.slots_per_sample = 10;
  config.jitter_fraction = 3.0;  // extreme jitter to force negatives
  config.floor_value = 0.0;
  const std::vector<double> coarse{0.01, 0.01, 0.01};
  const auto fine = resample_series(coarse, config, rng);
  for (double v : fine) EXPECT_GE(v, 0.0);
}

TEST(ResamplerTest, ShortInputsReturnedUnchanged) {
  util::Rng rng(1);
  ResampleConfig config;
  const std::vector<double> one{3.0};
  EXPECT_EQ(resample_series(one, config, rng), one);
  EXPECT_TRUE(resample_series({}, config, rng).empty());
}

TEST(ResamplerTest, UsageResampleComponentwise) {
  util::Rng rng(1);
  ResampleConfig config;
  config.slots_per_sample = 2;
  config.jitter_fraction = 0.0;
  const std::vector<ResourceVector> coarse{ResourceVector(0, 0, 0),
                                           ResourceVector(2, 4, 6)};
  const auto fine = resample_usage(coarse, config, rng);
  ASSERT_EQ(fine.size(), 3u);
  EXPECT_EQ(fine[1], ResourceVector(1, 2, 3));
}

TEST(ResamplerTest, JobResampleKeepsValidity) {
  util::Rng rng(3);
  Job coarse;
  coarse.id = 1;
  coarse.duration_slots = 4;
  coarse.request = ResourceVector(2.0, 2.0, 2.0);
  coarse.usage = {ResourceVector(1.0, 1.0, 1.0), ResourceVector(1.9, 1.9, 1.9),
                  ResourceVector(0.5, 0.5, 0.5), ResourceVector(1.0, 1.0, 1.0)};
  ResampleConfig config;
  config.slots_per_sample = 30;
  config.jitter_fraction = 0.1;
  const Job fine = resample_job(coarse, config, rng);
  EXPECT_EQ(fine.duration_slots, fine.usage.size());
  EXPECT_EQ(fine.duration_slots, 3u * 30 + 1);
  EXPECT_TRUE(fine.valid());
}

TEST(ResamplerTest, FiveMinuteToTenSecondScenario) {
  // The paper's transformation: 5-minute records to 10-second slots.
  util::Rng rng(5);
  ResampleConfig config;  // default slots_per_sample = 30
  const std::vector<double> five_minute_records{0.5, 0.7, 0.6, 0.8};
  const auto ten_second = resample_series(five_minute_records, config, rng);
  EXPECT_EQ(ten_second.size(), 91u);
}

}  // namespace
}  // namespace corp::trace
