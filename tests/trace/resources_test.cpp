#include "trace/resources.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace corp::trace {
namespace {

TEST(ResourceVectorTest, DefaultIsZero) {
  ResourceVector v;
  EXPECT_DOUBLE_EQ(v.cpu(), 0.0);
  EXPECT_DOUBLE_EQ(v.memory(), 0.0);
  EXPECT_DOUBLE_EQ(v.storage(), 0.0);
  EXPECT_EQ(v, ResourceVector::zero());
}

TEST(ResourceVectorTest, Arithmetic) {
  const ResourceVector a(1.0, 2.0, 3.0);
  const ResourceVector b(0.5, 0.5, 0.5);
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu(), 1.5);
  EXPECT_DOUBLE_EQ(sum.storage(), 3.5);
  const ResourceVector diff = a - b;
  EXPECT_DOUBLE_EQ(diff.memory(), 1.5);
  const ResourceVector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.cpu(), 2.0);
  const ResourceVector scaled2 = 2.0 * a;
  EXPECT_EQ(scaled, scaled2);
}

TEST(ResourceVectorTest, GetSetByKind) {
  ResourceVector v;
  v.set(ResourceKind::kMemory, 8.0);
  EXPECT_DOUBLE_EQ(v.get(ResourceKind::kMemory), 8.0);
  EXPECT_DOUBLE_EQ(v[1], 8.0);
}

TEST(ResourceVectorTest, FitsWithin) {
  const ResourceVector small(1.0, 1.0, 1.0);
  const ResourceVector big(2.0, 2.0, 2.0);
  EXPECT_TRUE(small.fits_within(big));
  EXPECT_FALSE(big.fits_within(small));
  EXPECT_TRUE(small.fits_within(small));
}

TEST(ResourceVectorTest, FitsWithinRespectsEpsilon) {
  const ResourceVector a(1.0 + 1e-12, 1.0, 1.0);
  const ResourceVector b(1.0, 1.0, 1.0);
  EXPECT_TRUE(a.fits_within(b));
  const ResourceVector c(1.1, 1.0, 1.0);
  EXPECT_FALSE(c.fits_within(b));
}

TEST(ResourceVectorTest, FitsWithinFailsOnAnyComponent) {
  const ResourceVector v(0.5, 3.0, 0.5);
  const ResourceVector cap(1.0, 1.0, 1.0);
  EXPECT_FALSE(v.fits_within(cap));
}

TEST(ResourceVectorTest, NegativityAndClamp) {
  const ResourceVector v(1.0, -0.5, 2.0);
  EXPECT_TRUE(v.any_negative());
  const ResourceVector clamped = v.clamped_non_negative();
  EXPECT_FALSE(clamped.any_negative());
  EXPECT_DOUBLE_EQ(clamped.memory(), 0.0);
  EXPECT_DOUBLE_EQ(clamped.cpu(), 1.0);
}

TEST(ResourceVectorTest, MinMax) {
  const ResourceVector a(1.0, 5.0, 3.0);
  const ResourceVector b(2.0, 4.0, 3.0);
  const ResourceVector lo = ResourceVector::min(a, b);
  const ResourceVector hi = ResourceVector::max(a, b);
  EXPECT_EQ(lo, ResourceVector(1.0, 4.0, 3.0));
  EXPECT_EQ(hi, ResourceVector(2.0, 5.0, 3.0));
}

TEST(ResourceVectorTest, DominantResource) {
  EXPECT_EQ(ResourceVector(3.0, 1.0, 2.0).dominant(), ResourceKind::kCpu);
  EXPECT_EQ(ResourceVector(1.0, 3.0, 2.0).dominant(), ResourceKind::kMemory);
  EXPECT_EQ(ResourceVector(1.0, 2.0, 3.0).dominant(), ResourceKind::kStorage);
  // Ties resolve to the lower index.
  EXPECT_EQ(ResourceVector(2.0, 2.0, 1.0).dominant(), ResourceKind::kCpu);
}

TEST(ResourceVectorTest, TotalsAndWeights) {
  const ResourceVector v(1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(v.total(), 6.0);
  EXPECT_DOUBLE_EQ(v.weighted_total({0.4, 0.4, 0.2}), 0.4 + 0.8 + 0.6);
}

TEST(ResourceVectorTest, StreamOutput) {
  std::ostringstream os;
  os << ResourceVector(1.0, 2.0, 3.0);
  EXPECT_EQ(os.str(), "<1, 2, 3>");
}

TEST(ResourceWeightsTest, PaperDefaultsValid) {
  ResourceWeights w;
  EXPECT_TRUE(w.valid());
  EXPECT_DOUBLE_EQ(w.weight(ResourceKind::kCpu), 0.4);
  EXPECT_DOUBLE_EQ(w.weight(ResourceKind::kStorage), 0.2);
}

TEST(ResourceWeightsTest, InvalidWeightsDetected) {
  ResourceWeights w;
  w.w = {0.5, 0.5, 0.5};
  EXPECT_FALSE(w.valid());
  w.w = {-0.2, 0.6, 0.6};
  EXPECT_FALSE(w.valid());
}

TEST(ResourceNameTest, AllKindsNamed) {
  EXPECT_EQ(resource_name(ResourceKind::kCpu), "CPU");
  EXPECT_EQ(resource_name(ResourceKind::kMemory), "MEM");
  EXPECT_EQ(resource_name(ResourceKind::kStorage), "STORAGE");
}

}  // namespace
}  // namespace corp::trace
