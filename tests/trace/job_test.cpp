#include "trace/job.hpp"

#include <gtest/gtest.h>

namespace corp::trace {
namespace {

Job make_job(std::uint64_t id, std::int64_t submit, std::size_t duration) {
  Job job;
  job.id = id;
  job.submit_slot = submit;
  job.duration_slots = duration;
  job.request = ResourceVector(2.0, 4.0, 10.0);
  job.usage.assign(duration, ResourceVector(1.0, 2.0, 5.0));
  return job;
}

TEST(JobTest, DemandAtClampsToLastSample) {
  Job job = make_job(1, 0, 3);
  job.usage[2] = ResourceVector(1.5, 1.5, 1.5);
  EXPECT_EQ(job.demand_at(2), job.usage[2]);
  EXPECT_EQ(job.demand_at(99), job.usage[2]);
}

TEST(JobTest, DemandAtEmptyUsageIsZero) {
  Job job;
  EXPECT_EQ(job.demand_at(0), ResourceVector::zero());
}

TEST(JobTest, PeakAndMeanDemand) {
  Job job = make_job(1, 0, 2);
  job.usage[0] = ResourceVector(1.0, 3.0, 2.0);
  job.usage[1] = ResourceVector(2.0, 1.0, 2.0);
  EXPECT_EQ(job.peak_demand(), ResourceVector(2.0, 3.0, 2.0));
  EXPECT_EQ(job.mean_demand(), ResourceVector(1.5, 2.0, 2.0));
}

TEST(JobTest, UnusedIsRequestMinusDemand) {
  Job job = make_job(1, 0, 1);
  const ResourceVector unused = job.unused_at(0);
  EXPECT_DOUBLE_EQ(unused.cpu(), 1.0);
  EXPECT_DOUBLE_EQ(unused.memory(), 2.0);
  EXPECT_DOUBLE_EQ(unused.storage(), 5.0);
}

TEST(JobTest, UnusedClampedNonNegative) {
  Job job = make_job(1, 0, 1);
  job.usage[0] = ResourceVector(5.0, 5.0, 50.0);  // above request
  EXPECT_FALSE(job.unused_at(0).any_negative());
}

TEST(JobTest, DominantResourceFromRequest) {
  Job job = make_job(1, 0, 1);
  EXPECT_EQ(job.dominant_resource(), ResourceKind::kStorage);
}

TEST(JobTest, ShortLivedCap) {
  EXPECT_TRUE(make_job(1, 0, kShortJobMaxSlots).is_short_lived());
  EXPECT_FALSE(make_job(1, 0, kShortJobMaxSlots + 1).is_short_lived());
}

TEST(JobTest, ValidAcceptsWellFormed) {
  EXPECT_TRUE(make_job(1, 0, 3).valid());
}

TEST(JobTest, ValidRejectsBadShapes) {
  Job job = make_job(1, 0, 3);
  job.usage.pop_back();
  EXPECT_FALSE(job.valid());

  Job zero_duration = make_job(1, 0, 1);
  zero_duration.duration_slots = 0;
  zero_duration.usage.clear();
  EXPECT_FALSE(zero_duration.valid());

  Job negative = make_job(1, 0, 1);
  negative.request = ResourceVector(-1.0, 1.0, 1.0);
  EXPECT_FALSE(negative.valid());

  Job over = make_job(1, 0, 1);
  over.usage[0] = ResourceVector(3.0, 1.0, 1.0);  // above request
  EXPECT_FALSE(over.valid());

  Job bad_slo = make_job(1, 0, 1);
  bad_slo.slo_stretch = 0.5;
  EXPECT_FALSE(bad_slo.valid());
}

TEST(TraceTest, SortsOnConstruction) {
  std::vector<Job> jobs;
  jobs.push_back(make_job(2, 10, 1));
  jobs.push_back(make_job(1, 5, 1));
  jobs.push_back(make_job(3, 5, 1));
  const Trace trace(std::move(jobs));
  EXPECT_EQ(trace.jobs()[0].id, 1u);
  EXPECT_EQ(trace.jobs()[1].id, 3u);
  EXPECT_EQ(trace.jobs()[2].id, 2u);
}

TEST(TraceTest, HorizonCoversLastJob) {
  Trace trace;
  trace.add(make_job(1, 5, 4));
  trace.add(make_job(2, 0, 2));
  trace.sort();
  EXPECT_EQ(trace.horizon_slots(), 9);
}

TEST(TraceTest, EmptyHorizonIsZero) {
  EXPECT_EQ(Trace{}.horizon_slots(), 0);
}

TEST(TraceTest, ArrivalsAtSlot) {
  Trace trace;
  trace.add(make_job(1, 3, 1));
  trace.add(make_job(2, 3, 1));
  trace.add(make_job(3, 4, 1));
  trace.sort();
  EXPECT_EQ(trace.arrivals_at(3).size(), 2u);
  EXPECT_EQ(trace.arrivals_at(4).size(), 1u);
  EXPECT_TRUE(trace.arrivals_at(99).empty());
}

TEST(TraceTest, FilterLongJobsRemovesAndCounts) {
  Trace trace;
  trace.add(make_job(1, 0, 5));
  trace.add(make_job(2, 0, kShortJobMaxSlots + 10));
  trace.sort();
  EXPECT_EQ(trace.filter_long_jobs(), 1u);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.jobs()[0].id, 1u);
}

TEST(TraceTest, ClassHistogramCounts) {
  Trace trace;
  Job a = make_job(1, 0, 1);
  a.job_class = JobClass::kCpuIntensive;
  Job b = make_job(2, 0, 1);
  b.job_class = JobClass::kCpuIntensive;
  Job c = make_job(3, 0, 1);
  c.job_class = JobClass::kBalanced;
  trace.add(a);
  trace.add(b);
  trace.add(c);
  const auto hist = trace.class_histogram();
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(JobClassTest, Names) {
  EXPECT_EQ(job_class_name(JobClass::kCpuIntensive), "cpu-intensive");
  EXPECT_EQ(job_class_name(JobClass::kStorageIntensive),
            "storage-intensive");
}

}  // namespace
}  // namespace corp::trace
