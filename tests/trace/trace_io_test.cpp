#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace corp::trace {
namespace {

Trace sample_trace() {
  GeneratorConfig config;
  config.num_jobs = 10;
  config.horizon_slots = 20;
  GoogleTraceGenerator gen(config);
  util::Rng rng(77);
  return gen.generate(rng);
}

TEST(TraceIoTest, RoundTripPreservesJobs) {
  const Trace original = sample_trace();
  std::ostringstream out;
  write_trace_csv(original, out);
  std::istringstream in(out.str());
  const Trace loaded = read_trace_csv(in);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Job& a = original.jobs()[i];
    const Job& b = loaded.jobs()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.job_class, b.job_class);
    EXPECT_EQ(a.submit_slot, b.submit_slot);
    EXPECT_EQ(a.duration_slots, b.duration_slots);
    EXPECT_NEAR(a.slo_stretch, b.slo_stretch, 1e-9);
    for (std::size_t r = 0; r < kNumResources; ++r) {
      EXPECT_NEAR(a.request[r], b.request[r], 1e-9);
    }
    ASSERT_EQ(a.usage.size(), b.usage.size());
    for (std::size_t t = 0; t < a.usage.size(); ++t) {
      for (std::size_t r = 0; r < kNumResources; ++r) {
        EXPECT_NEAR(a.usage[t][r], b.usage[t][r], 1e-9);
      }
    }
  }
}

TEST(TraceIoTest, RowCountMatchesTotalSlots) {
  const Trace trace = sample_trace();
  std::size_t total_slots = 0;
  for (const Job& job : trace.jobs()) total_slots += job.usage.size();
  std::ostringstream out;
  write_trace_csv(trace, out);
  std::size_t lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, total_slots + 1);  // + header
}

TEST(TraceIoTest, BadHeaderThrows) {
  std::istringstream in("wrong,header\n1,2\n");
  EXPECT_THROW(read_trace_csv(in), std::runtime_error);
}

TEST(TraceIoTest, InvalidJobRejected) {
  // A row whose usage exceeds the request must be rejected on load.
  std::ostringstream out;
  out << "job_id,class,submit_slot,duration_slots,slo_stretch,"
         "req_cpu,req_mem,req_storage,slot,use_cpu,use_mem,use_storage\n";
  out << "1,0,0,1,1.2,1.0,1.0,1.0,0,5.0,0.5,0.5\n";
  std::istringstream in(out.str());
  EXPECT_THROW(read_trace_csv(in), std::runtime_error);
}

// Captures the diagnostic text so the negative tests below can pin that a
// parse error names the 1-based line and the offending column.
std::string parse_error(const std::string& csv) {
  std::istringstream in(csv);
  try {
    read_trace_csv(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected read_trace_csv to throw";
  return {};
}

constexpr const char* kGoodHeader =
    "job_id,class,submit_slot,duration_slots,slo_stretch,"
    "req_cpu,req_mem,req_storage,slot,use_cpu,use_mem,use_storage\n";

TEST(TraceIoTest, BadHeaderNamesLineAndExpectation) {
  const std::string message =
      parse_error("job_id,klass,submit_slot\n1,0,0\n");
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("unexpected header"), std::string::npos) << message;
  EXPECT_NE(message.find("job_id,class"), std::string::npos) << message;
}

TEST(TraceIoTest, TruncatedRowNamesLineAndFieldCount) {
  // Second data row (file line 3) is missing its usage columns.
  const std::string message =
      parse_error(std::string(kGoodHeader) +
                  "1,0,0,1,1.2,1.0,1.0,1.0,0,0.5,0.5,0.5\n"
                  "1,0,0,1,1.2,1.0,1.0\n");
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("expected 12 fields, got 7"), std::string::npos)
      << message;
}

TEST(TraceIoTest, NonNumericFieldNamesLineAndColumn) {
  const std::string message =
      parse_error(std::string(kGoodHeader) +
                  "1,0,0,1,1.2,banana,1.0,1.0,0,0.5,0.5,0.5\n");
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("'req_cpu'"), std::string::npos) << message;
  EXPECT_NE(message.find("banana"), std::string::npos) << message;
}

TEST(TraceIoTest, TrailingGarbageInIntegerRejected) {
  // "12abc" parses as 12 under raw std::stoull; the hardened reader
  // requires full consumption and names the column.
  const std::string message =
      parse_error(std::string(kGoodHeader) +
                  "12abc,0,0,1,1.2,1.0,1.0,1.0,0,0.5,0.5,0.5\n");
  EXPECT_NE(message.find("'job_id'"), std::string::npos) << message;
  EXPECT_NE(message.find("12abc"), std::string::npos) << message;
}

TEST(TraceIoTest, NegativeUnsignedFieldRejected) {
  const std::string message =
      parse_error(std::string(kGoodHeader) +
                  "1,0,0,-4,1.2,1.0,1.0,1.0,0,0.5,0.5,0.5\n");
  EXPECT_NE(message.find("'duration_slots'"), std::string::npos) << message;
}

TEST(TraceIoTest, JobClassOutOfRangeRejected) {
  const std::string message =
      parse_error(std::string(kGoodHeader) +
                  "1,9,0,1,1.2,1.0,1.0,1.0,0,0.5,0.5,0.5\n");
  EXPECT_NE(message.find("'class'"), std::string::npos) << message;
  EXPECT_NE(message.find("out of range"), std::string::npos) << message;
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_csv_file("/nonexistent/trace.csv"),
               std::runtime_error);
  EXPECT_THROW(write_trace_csv_file(Trace{}, "/nonexistent/dir/trace.csv"),
               std::runtime_error);
}

TEST(TraceIoTest, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = testing::TempDir() + "/corp_trace_test.csv";
  write_trace_csv_file(original, path);
  const Trace loaded = read_trace_csv_file(path);
  EXPECT_EQ(loaded.size(), original.size());
}

}  // namespace
}  // namespace corp::trace
