#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.hpp"
#include "util/stats.hpp"

namespace corp::trace {
namespace {

GeneratorConfig mixed_config() {
  GeneratorConfig config;
  config.num_jobs = 60;
  config.horizon_slots = 40;
  config.long_job_fraction = 0.3;
  return config;
}

TEST(LongJobTest, MixedTraceHasBothKinds) {
  GoogleTraceGenerator gen(mixed_config());
  util::Rng rng(5);
  const Trace trace = gen.generate(rng);
  std::size_t longs = 0, shorts = 0;
  for (const auto& job : trace.jobs()) {
    (job.is_short_lived() ? shorts : longs)++;
  }
  EXPECT_GT(longs, 0u);
  EXPECT_GT(shorts, 0u);
}

TEST(LongJobTest, LongJobsValidAndWithinRange) {
  GoogleTraceGenerator gen(mixed_config());
  util::Rng rng(6);
  const Trace trace = gen.generate(rng);
  for (const auto& job : trace.jobs()) {
    if (job.is_short_lived()) continue;
    EXPECT_TRUE(job.valid());
    EXPECT_GE(job.duration_slots, mixed_config().long_duration_min_slots);
    EXPECT_LE(job.duration_slots, mixed_config().long_duration_max_slots);
  }
}

TEST(LongJobTest, DirectGenerationDeterministic) {
  GoogleTraceGenerator gen(mixed_config());
  util::Rng a(9), b(9);
  const Job ja = gen.generate_long_job(1, 0, a);
  const Job jb = gen.generate_long_job(1, 0, b);
  EXPECT_EQ(ja.duration_slots, jb.duration_slots);
  EXPECT_EQ(ja.usage, jb.usage);
}

TEST(LongJobTest, LongJobsHavePeriodicPattern) {
  // Autocorrelation at the configured period should be strong — this is
  // the signal the paper says time-series methods exploit on
  // long-running services (and which short-lived jobs lack).
  GeneratorConfig config = mixed_config();
  config.long_pattern_period = 40.0;
  config.long_duration_min_slots = 200;
  config.long_duration_max_slots = 240;
  GoogleTraceGenerator gen(config);
  util::Rng rng(11);
  const Job job = gen.generate_long_job(1, 0, rng);

  std::vector<double> series;
  for (const auto& u : job.usage) series.push_back(u.cpu());
  const std::size_t lag = 40;
  std::vector<double> head(series.begin(),
                           series.end() - static_cast<std::ptrdiff_t>(lag));
  std::vector<double> tail(series.begin() + static_cast<std::ptrdiff_t>(lag),
                           series.end());
  EXPECT_GT(util::pearson(head, tail), 0.7);
}

TEST(LongJobTest, ShortJobsLackThatPattern) {
  GeneratorConfig config = mixed_config();
  config.max_duration_slots = 30;
  GoogleTraceGenerator gen(config);
  util::Rng rng(13);
  // Build one long concatenated short-job-style series and check its
  // lag-40 autocorrelation is weak.
  const auto series = gen.generate_utilization_series(400, rng);
  const std::size_t lag = 40;
  std::vector<double> head(series.begin(),
                           series.end() - static_cast<std::ptrdiff_t>(lag));
  std::vector<double> tail(series.begin() + static_cast<std::ptrdiff_t>(lag),
                           series.end());
  EXPECT_LT(std::abs(util::pearson(head, tail)), 0.4);
}

TEST(LongJobTest, ZeroFractionGeneratesNone) {
  GeneratorConfig config = mixed_config();
  config.long_job_fraction = 0.0;
  GoogleTraceGenerator gen(config);
  util::Rng rng(15);
  const Trace trace = gen.generate(rng);
  for (const auto& job : trace.jobs()) {
    EXPECT_TRUE(job.is_short_lived());
  }
}

}  // namespace
}  // namespace corp::trace
