#include "dnn/parallel_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::dnn {
namespace {

Dataset sine_dataset(std::size_t n) {
  std::vector<double> series;
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(0.5 + 0.4 * std::sin(0.3 * static_cast<double>(i)));
  }
  return make_windowed_dataset(series, 6, 2);
}

NetworkConfig small_net() {
  NetworkConfig config;
  config.input_size = 6;
  config.hidden_layers = 2;
  config.hidden_units = 10;
  return config;
}

TEST(ParallelTrainerTest, RejectsZeroBatch) {
  util::Rng rng(1);
  ParallelTrainerConfig config;
  config.batch_size = 0;
  EXPECT_THROW(ParallelTrainer(config, rng), std::invalid_argument);
}

TEST(ParallelTrainerTest, EmptyDatasetNoop) {
  util::Rng rng(1);
  ParallelTrainer trainer({}, rng);
  Network net(small_net(), rng);
  SgdOptimizer opt(0.1);
  const TrainReport report = trainer.fit(net, opt, Dataset{});
  EXPECT_EQ(report.epochs_run, 0u);
}

TEST(ParallelTrainerTest, InconsistentDatasetThrows) {
  util::Rng rng(1);
  ParallelTrainer trainer({}, rng);
  Network net(small_net(), rng);
  SgdOptimizer opt(0.1);
  Dataset bad;
  bad.inputs.push_back({1.0});
  EXPECT_THROW(trainer.fit(net, opt, bad), std::invalid_argument);
}

TEST(ParallelTrainerTest, ReducesValidationLoss) {
  util::Rng rng(3);
  ParallelTrainerConfig config;
  config.workers = 2;
  config.max_epochs = 40;
  ParallelTrainer trainer(config, rng);
  Network net(small_net(), rng);
  SgdOptimizer opt(0.3);  // batch-averaged gradients take a larger rate
  const Dataset data = sine_dataset(300);
  const double before = Trainer::evaluate(net, data);
  const TrainReport report = trainer.fit(net, opt, data);
  const double after = Trainer::evaluate(net, data);
  EXPECT_LT(after, before);
  EXPECT_LT(report.best_validation_loss, before);
}

TEST(ParallelTrainerTest, SingleWorkerMatchesQualityBand) {
  // One worker and four workers should land in a similar quality band on
  // the same problem (not bit-identical: batching/order differ).
  const Dataset data = sine_dataset(400);
  auto run = [&](std::size_t workers) {
    util::Rng rng(7);
    ParallelTrainerConfig config;
    config.workers = workers;
    config.max_epochs = 30;
    ParallelTrainer trainer(config, rng);
    Network net(small_net(), rng);
    SgdOptimizer opt(0.3);
    return trainer.fit(net, opt, data).best_validation_loss;
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_LT(one, 0.03);
  EXPECT_LT(four, 0.03);
}

TEST(ParallelTrainerTest, GradientReductionMatchesSerialBatch) {
  // One synchronous batch with 2 workers must produce the same parameter
  // update as serially accumulating the whole batch and stepping once
  // (same initial weights, no shuffle).
  const Dataset data = [] {
    Dataset d;
    for (int i = 0; i < 8; ++i) {
      d.inputs.push_back(Vector(6, 0.1 * i));
      d.targets.push_back({0.05 * i});
    }
    return d;
  }();

  // Serial reference: average gradient over the batch, one step.
  util::Rng rng_a(11);
  Network serial(small_net(), rng_a);
  SgdOptimizer opt_serial(0.1);
  opt_serial.bind(serial.layer_pointers());
  serial.zero_grad();
  for (std::size_t s = 0; s < data.size(); ++s) {
    serial.train_sample(data.inputs[s], data.targets[s]);
  }
  // Scale accumulated gradients to the batch average.
  for (std::size_t li = 0; li < serial.layer_count(); ++li) {
    auto flat = serial.layer(li).grad_weights().flat();
    for (double& g : flat) g /= static_cast<double>(data.size());
    for (double& g : serial.layer(li).grad_bias()) {
      g /= static_cast<double>(data.size());
    }
  }
  opt_serial.step();

  // Parallel: one epoch, batch = whole dataset, no shuffle, no patience.
  util::Rng rng_b(11);
  Network parallel(small_net(), rng_b);
  SgdOptimizer opt_parallel(0.1);
  ParallelTrainerConfig config;
  config.workers = 2;
  config.batch_size = data.size();
  config.max_epochs = 1;
  config.shuffle = false;
  config.validation_fraction = 0.0;
  util::Rng trainer_rng(13);
  ParallelTrainer trainer(config, trainer_rng);
  trainer.fit(parallel, opt_parallel, data);

  for (std::size_t li = 0; li < serial.layer_count(); ++li) {
    const auto sa = serial.layer(li).weights().flat();
    const auto pa = parallel.layer(li).weights().flat();
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_NEAR(sa[i], pa[i], 1e-10) << "layer " << li << " w" << i;
    }
  }
}

}  // namespace
}  // namespace corp::dnn
