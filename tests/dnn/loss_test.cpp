#include "dnn/loss.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corp::dnn {
namespace {

TEST(LossTest, MseKnownValue) {
  const std::vector<double> pred{1.0, 2.0};
  const std::vector<double> target{0.0, 4.0};
  // 0.5 * ((1)^2 + (2)^2) / 2 = 1.25
  EXPECT_DOUBLE_EQ(mse(pred, target), 1.25);
}

TEST(LossTest, MseZeroWhenEqual) {
  const std::vector<double> v{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(mse(v, v), 0.0);
}

TEST(LossTest, MseRejectsBadInputs) {
  EXPECT_THROW(mse(std::vector<double>{1.0}, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(mse(std::vector<double>{}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(LossTest, GradientSignConvention) {
  // d(0.5(t-g)^2)/dg = (g - t) / n: prediction above target -> positive.
  const std::vector<double> pred{2.0};
  const std::vector<double> target{1.0};
  std::vector<double> grad(1);
  mse_gradient(pred, target, grad);
  EXPECT_DOUBLE_EQ(grad[0], 1.0);
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  const std::vector<double> target{0.3, -0.7, 1.2};
  std::vector<double> pred{0.1, 0.5, -0.4};
  std::vector<double> grad(3);
  mse_gradient(pred, target, grad);
  const double h = 1e-7;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    std::vector<double> p = pred, m = pred;
    p[i] += h;
    m[i] -= h;
    const double fd = (mse(p, target) - mse(m, target)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-6);
  }
}

TEST(LossTest, GradientSizeMismatchThrows) {
  std::vector<double> grad(2);
  EXPECT_THROW(mse_gradient(std::vector<double>{1.0},
                            std::vector<double>{1.0}, grad),
               std::invalid_argument);
}

TEST(LossTest, MaeLoss) {
  const std::vector<double> pred{1.0, -1.0};
  const std::vector<double> target{0.0, 1.0};
  EXPECT_DOUBLE_EQ(mae_loss(pred, target), 1.5);
  EXPECT_THROW(mae_loss(std::vector<double>{}, std::vector<double>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace corp::dnn
