#include "dnn/network.hpp"

#include <gtest/gtest.h>

#include "dnn/optimizer.hpp"

namespace corp::dnn {
namespace {

NetworkConfig paper_config() {
  NetworkConfig config;
  config.input_size = 12;
  config.output_size = 1;
  config.hidden_layers = 4;   // Table II
  config.hidden_units = 50;   // Table II
  return config;
}

TEST(NetworkTest, PaperArchitectureShapes) {
  util::Rng rng(1);
  Network net(paper_config(), rng);
  EXPECT_EQ(net.layer_count(), 5u);  // 4 hidden + output head
  EXPECT_EQ(net.layer(0).inputs(), 12u);
  EXPECT_EQ(net.layer(0).outputs(), 50u);
  EXPECT_EQ(net.layer(4).inputs(), 50u);
  EXPECT_EQ(net.layer(4).outputs(), 1u);
  EXPECT_EQ(net.layer(0).activation(), Activation::kSigmoid);
  EXPECT_EQ(net.layer(4).activation(), Activation::kIdentity);
}

TEST(NetworkTest, ParameterCount) {
  util::Rng rng(1);
  Network net(paper_config(), rng);
  const std::size_t expected = (12 * 50 + 50) + 3 * (50 * 50 + 50) +
                               (50 * 1 + 1);
  EXPECT_EQ(net.parameter_count(), expected);
}

TEST(NetworkTest, RejectsInvalidConfigs) {
  util::Rng rng(1);
  NetworkConfig config = paper_config();
  config.input_size = 0;
  EXPECT_THROW(Network(config, rng), std::invalid_argument);
  config = paper_config();
  config.hidden_layers = 0;
  EXPECT_THROW(Network(config, rng), std::invalid_argument);
}

TEST(NetworkTest, ForwardDeterministic) {
  util::Rng rng(1);
  Network net(paper_config(), rng);
  const std::vector<double> input(12, 0.5);
  const Vector a = net.predict(input);
  const Vector b = net.predict(input);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
}

TEST(NetworkTest, TrainSampleRejectsWrongTargetSize) {
  util::Rng rng(1);
  Network net(paper_config(), rng);
  EXPECT_THROW(net.train_sample(std::vector<double>(12, 0.1),
                                std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(NetworkTest, FullNetworkGradientCheck) {
  util::Rng rng(13);
  NetworkConfig config;
  config.input_size = 3;
  config.hidden_layers = 2;
  config.hidden_units = 4;
  config.output_size = 2;
  Network net(config, rng);
  const std::vector<double> input{0.2, -0.4, 0.9};
  const std::vector<double> target{0.3, 0.7};

  net.zero_grad();
  net.train_sample(input, target);

  const double h = 1e-6;
  for (std::size_t li = 0; li < net.layer_count(); ++li) {
    DenseLayer& layer = net.layer(li);
    // Check a handful of weights per layer (corner + middle).
    const std::size_t rows = layer.outputs();
    const std::size_t cols = layer.inputs();
    const std::pair<std::size_t, std::size_t> picks[] = {
        {0, 0}, {rows - 1, cols - 1}, {rows / 2, cols / 2}};
    for (const auto& [r, c] : picks) {
      const double orig = layer.weights()(r, c);
      layer.weights()(r, c) = orig + h;
      const double lp = mse(net.predict(input), target);
      layer.weights()(r, c) = orig - h;
      const double lm = mse(net.predict(input), target);
      layer.weights()(r, c) = orig;
      EXPECT_NEAR(layer.grad_weights()(r, c), (lp - lm) / (2 * h), 1e-5)
          << "layer " << li << " weight (" << r << "," << c << ")";
    }
  }
}

TEST(NetworkTest, LearnsXorShapedProblem) {
  // A nonlinear problem a linear model cannot fit: XOR on {0,1}^2.
  util::Rng rng(3);
  NetworkConfig config;
  config.input_size = 2;
  config.hidden_layers = 2;
  config.hidden_units = 8;
  config.output_size = 1;
  config.hidden_activation = Activation::kTanh;
  Network net(config, rng);
  SgdOptimizer opt(0.1, 0.9);
  opt.bind(net.layer_pointers());

  const double xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const double ys[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 2000; ++epoch) {
    for (int s = 0; s < 4; ++s) {
      net.zero_grad();
      net.train_sample(std::vector<double>{xs[s][0], xs[s][1]},
                       std::vector<double>{ys[s]});
      opt.step();
    }
  }
  for (int s = 0; s < 4; ++s) {
    const Vector out =
        net.predict(std::vector<double>{xs[s][0], xs[s][1]});
    EXPECT_NEAR(out[0], ys[s], 0.25) << "sample " << s;
  }
}

}  // namespace
}  // namespace corp::dnn
