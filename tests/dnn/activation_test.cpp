#include "dnn/activation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace corp::dnn {
namespace {

TEST(ActivationTest, SigmoidValues) {
  EXPECT_DOUBLE_EQ(activate(Activation::kSigmoid, 0.0), 0.5);
  EXPECT_NEAR(activate(Activation::kSigmoid, 100.0), 1.0, 1e-12);
  EXPECT_NEAR(activate(Activation::kSigmoid, -100.0), 0.0, 1e-12);
}

TEST(ActivationTest, TanhValues) {
  EXPECT_DOUBLE_EQ(activate(Activation::kTanh, 0.0), 0.0);
  EXPECT_NEAR(activate(Activation::kTanh, 1.0), std::tanh(1.0), 1e-15);
}

TEST(ActivationTest, ReluValues) {
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 3.0), 3.0);
}

TEST(ActivationTest, IdentityPassesThrough) {
  EXPECT_DOUBLE_EQ(activate(Activation::kIdentity, -7.5), -7.5);
}

TEST(ActivationTest, DerivativesFromOutput) {
  // sigmoid'(0) = 0.25, expressed via y = 0.5.
  EXPECT_DOUBLE_EQ(
      activate_derivative_from_output(Activation::kSigmoid, 0.5), 0.25);
  // tanh' via y: 1 - y^2.
  EXPECT_DOUBLE_EQ(activate_derivative_from_output(Activation::kTanh, 0.5),
                   0.75);
  EXPECT_DOUBLE_EQ(activate_derivative_from_output(Activation::kRelu, 2.0),
                   1.0);
  EXPECT_DOUBLE_EQ(activate_derivative_from_output(Activation::kRelu, 0.0),
                   0.0);
  EXPECT_DOUBLE_EQ(
      activate_derivative_from_output(Activation::kIdentity, 123.0), 1.0);
}

// Property: the output-based derivative matches the finite difference of
// the forward function for every activation kind.
class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradTest, DerivativeMatchesFiniteDifference) {
  const Activation a = GetParam();
  for (double x : {-1.5, -0.3, 0.2, 0.9, 2.0}) {
    if (a == Activation::kRelu && std::abs(x) < 0.25) continue;  // kink
    const double h = 1e-6;
    const double fd =
        (activate(a, x + h) - activate(a, x - h)) / (2.0 * h);
    const double y = activate(a, x);
    EXPECT_NEAR(activate_derivative_from_output(a, y), fd, 1e-5)
        << activation_name(a) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradTest,
                         ::testing::Values(Activation::kSigmoid,
                                           Activation::kTanh,
                                           Activation::kRelu,
                                           Activation::kIdentity));

TEST(ActivationTest, InplaceAppliesToAll) {
  std::vector<double> xs{-1.0, 0.0, 1.0};
  activate_inplace(Activation::kRelu, xs);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
  EXPECT_DOUBLE_EQ(xs[2], 1.0);
}

TEST(ActivationTest, NameRoundTrip) {
  for (Activation a : {Activation::kSigmoid, Activation::kTanh,
                       Activation::kRelu, Activation::kIdentity}) {
    EXPECT_EQ(activation_from_name(activation_name(a)), a);
  }
  EXPECT_THROW(activation_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace corp::dnn
