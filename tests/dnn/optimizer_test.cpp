#include "dnn/optimizer.hpp"

#include <gtest/gtest.h>

#include "dnn/loss.hpp"
#include "dnn/network.hpp"

namespace corp::dnn {
namespace {

TEST(SgdOptimizerTest, AppliesScaledGradient) {
  util::Rng rng(1);
  DenseLayer layer(1, 1, Activation::kIdentity, rng);
  layer.weights()(0, 0) = 1.0;
  layer.bias()[0] = 0.0;
  layer.grad_weights()(0, 0) = 2.0;
  layer.grad_bias()[0] = 4.0;
  SgdOptimizer opt(0.1);
  opt.bind({&layer});
  opt.step();
  EXPECT_NEAR(layer.weights()(0, 0), 1.0 - 0.1 * 2.0, 1e-12);
  EXPECT_NEAR(layer.bias()[0], -0.4, 1e-12);
}

TEST(SgdOptimizerTest, MomentumAccumulatesVelocity) {
  util::Rng rng(1);
  DenseLayer layer(1, 1, Activation::kIdentity, rng);
  layer.weights()(0, 0) = 0.0;
  layer.grad_weights()(0, 0) = 1.0;
  SgdOptimizer opt(0.1, 0.9);
  opt.bind({&layer});
  opt.step();  // v = -0.1, w = -0.1
  opt.step();  // v = -0.9*0.1 - 0.1 = -0.19, w = -0.29
  EXPECT_NEAR(layer.weights()(0, 0), -0.29, 1e-12);
}

TEST(SgdOptimizerTest, RejectsBadHyperparameters) {
  EXPECT_THROW(SgdOptimizer(0.0), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer(-1.0), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer(0.1, -0.1), std::invalid_argument);
}

TEST(AdamOptimizerTest, RejectsBadLearningRate) {
  EXPECT_THROW(AdamOptimizer(0.0), std::invalid_argument);
}

TEST(AdamOptimizerTest, FirstStepMovesByLearningRate) {
  util::Rng rng(1);
  DenseLayer layer(1, 1, Activation::kIdentity, rng);
  layer.weights()(0, 0) = 0.0;
  layer.grad_weights()(0, 0) = 5.0;  // any positive gradient
  AdamOptimizer opt(0.01);
  opt.bind({&layer});
  opt.step();
  // Bias-corrected Adam's first step is ~ -lr * sign(gradient).
  EXPECT_NEAR(layer.weights()(0, 0), -0.01, 1e-6);
}

// Both optimizers must drive a tiny regression problem to low loss.
class OptimizerConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerConvergenceTest, LearnsLinearFunction) {
  util::Rng rng(7);
  NetworkConfig config;
  config.input_size = 2;
  config.hidden_layers = 1;
  config.hidden_units = 8;
  config.output_size = 1;
  config.hidden_activation = Activation::kTanh;
  Network net(config, rng);

  std::unique_ptr<Optimizer> opt;
  if (GetParam() == 0) {
    opt = std::make_unique<SgdOptimizer>(0.05);
  } else if (GetParam() == 1) {
    opt = std::make_unique<SgdOptimizer>(0.02, 0.9);
  } else {
    opt = std::make_unique<AdamOptimizer>(0.01);
  }
  opt->bind(net.layer_pointers());

  // Target: y = 0.3 x0 - 0.2 x1 + 0.1
  auto target_fn = [](double a, double b) { return 0.3 * a - 0.2 * b + 0.1; };
  util::Rng data_rng(11);
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const double a = data_rng.uniform(-1, 1);
    const double b = data_rng.uniform(-1, 1);
    net.zero_grad();
    final_loss = net.train_sample(std::vector<double>{a, b},
                                  std::vector<double>{target_fn(a, b)});
    opt->step();
  }
  EXPECT_LT(final_loss, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergenceTest,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace corp::dnn
