#include "dnn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::dnn {
namespace {

TEST(DatasetTest, ConsistencyChecks) {
  Dataset d;
  EXPECT_TRUE(d.consistent());
  d.inputs.push_back({1.0, 2.0});
  d.targets.push_back({3.0});
  EXPECT_TRUE(d.consistent());
  d.inputs.push_back({1.0});  // ragged
  d.targets.push_back({3.0});
  EXPECT_FALSE(d.consistent());
}

TEST(DatasetTest, ConsistencyDetectsCountMismatch) {
  Dataset d;
  d.inputs.push_back({1.0});
  EXPECT_FALSE(d.consistent());
}

TEST(DatasetTest, ChronologicalValidationSplit) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.inputs.push_back({static_cast<double>(i)});
    d.targets.push_back({static_cast<double>(i)});
  }
  const auto [train, val] = d.split_validation(0.3);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(val.size(), 3u);
  // Validation must be the chronological tail (no future leakage).
  EXPECT_DOUBLE_EQ(val.inputs[0][0], 7.0);
}

TEST(WindowedDatasetTest, ShapesAndTargets) {
  std::vector<double> series{1, 2, 3, 4, 5, 6, 7, 8};
  const Dataset d = make_windowed_dataset(series, 3, 2);
  // Windows: starts 0..3 -> 4 samples.
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d.inputs[0], (Vector{1, 2, 3}));
  // Target = mean of the next 2 values (4, 5) = 4.5.
  EXPECT_DOUBLE_EQ(d.targets[0][0], 4.5);
  EXPECT_EQ(d.inputs[3], (Vector{4, 5, 6}));
  EXPECT_DOUBLE_EQ(d.targets[3][0], 7.5);
}

TEST(WindowedDatasetTest, TooShortSeriesGivesEmpty) {
  std::vector<double> series{1, 2, 3};
  EXPECT_EQ(make_windowed_dataset(series, 3, 2).size(), 0u);
}

TEST(WindowedDatasetTest, RejectsZeroParameters) {
  std::vector<double> series{1, 2, 3, 4};
  EXPECT_THROW(make_windowed_dataset(series, 0, 1), std::invalid_argument);
  EXPECT_THROW(make_windowed_dataset(series, 1, 0), std::invalid_argument);
}

Dataset sine_dataset(std::size_t n) {
  std::vector<double> series;
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(0.5 + 0.4 * std::sin(0.3 * static_cast<double>(i)));
  }
  return make_windowed_dataset(series, 6, 2);
}

TEST(TrainerTest, ReducesValidationLoss) {
  util::Rng rng(3);
  NetworkConfig net_config;
  net_config.input_size = 6;
  net_config.hidden_layers = 2;
  net_config.hidden_units = 12;
  Network net(net_config, rng);
  SgdOptimizer opt(0.1);

  TrainerConfig config;
  config.max_epochs = 30;
  config.pretrain_epochs = 0;
  Trainer trainer(config, rng);
  const Dataset data = sine_dataset(300);
  const double before = Trainer::evaluate(net, data);
  const TrainReport report = trainer.fit(net, opt, data);
  const double after = Trainer::evaluate(net, data);
  EXPECT_LT(after, before);
  EXPECT_GT(report.epochs_run, 0u);
  EXPECT_FALSE(report.validation_curve.empty());
  EXPECT_LT(report.best_validation_loss, before);
}

TEST(TrainerTest, PatienceStopsEarly) {
  util::Rng rng(3);
  NetworkConfig net_config;
  net_config.input_size = 6;
  net_config.hidden_layers = 1;
  net_config.hidden_units = 4;
  Network net(net_config, rng);
  SgdOptimizer opt(0.05);
  TrainerConfig config;
  config.max_epochs = 200;
  config.patience = 2;
  config.min_delta = 1e-3;  // coarse: plateaus trigger quickly
  config.pretrain_epochs = 0;
  Trainer trainer(config, rng);
  const TrainReport report = trainer.fit(net, opt, sine_dataset(150));
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.epochs_run, 200u);
}

TEST(TrainerTest, PretrainingDoesNotBreakTraining) {
  util::Rng rng(5);
  NetworkConfig net_config;
  net_config.input_size = 6;
  net_config.hidden_layers = 2;
  net_config.hidden_units = 10;
  Network net(net_config, rng);
  SgdOptimizer opt(0.1);
  TrainerConfig config;
  config.max_epochs = 20;
  config.pretrain_epochs = 3;
  Trainer trainer(config, rng);
  const Dataset data = sine_dataset(200);
  const TrainReport report = trainer.fit(net, opt, data);
  EXPECT_LT(report.best_validation_loss, 0.05);
}

TEST(TrainerTest, EmptyDatasetIsNoop) {
  util::Rng rng(5);
  NetworkConfig net_config;
  net_config.input_size = 2;
  Network net(net_config, rng);
  SgdOptimizer opt(0.1);
  Trainer trainer({}, rng);
  const TrainReport report = trainer.fit(net, opt, Dataset{});
  EXPECT_EQ(report.epochs_run, 0u);
}

TEST(TrainerTest, InconsistentDatasetThrows) {
  util::Rng rng(5);
  NetworkConfig net_config;
  net_config.input_size = 2;
  Network net(net_config, rng);
  SgdOptimizer opt(0.1);
  Trainer trainer({}, rng);
  Dataset bad;
  bad.inputs.push_back({1.0, 2.0});
  EXPECT_THROW(trainer.fit(net, opt, bad), std::invalid_argument);
}

}  // namespace
}  // namespace corp::dnn
