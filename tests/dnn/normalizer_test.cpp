#include "dnn/normalizer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corp::dnn {
namespace {

TEST(NormalizerTest, FitLearnsRange) {
  MinMaxNormalizer norm;
  norm.fit(std::vector<double>{2.0, 8.0, 5.0});
  EXPECT_TRUE(norm.fitted());
  EXPECT_DOUBLE_EQ(norm.min(), 2.0);
  EXPECT_DOUBLE_EQ(norm.max(), 8.0);
}

TEST(NormalizerTest, TransformMapsToUnitInterval) {
  MinMaxNormalizer norm;
  norm.fit(std::vector<double>{0.0, 10.0});
  EXPECT_DOUBLE_EQ(norm.transform(0.0), 0.0);
  EXPECT_DOUBLE_EQ(norm.transform(10.0), 1.0);
  EXPECT_DOUBLE_EQ(norm.transform(5.0), 0.5);
}

TEST(NormalizerTest, InverseRoundTrips) {
  MinMaxNormalizer norm;
  norm.fit(std::vector<double>{-3.0, 7.0});
  for (double x : {-3.0, -1.0, 0.0, 2.5, 7.0}) {
    EXPECT_NEAR(norm.inverse(norm.transform(x)), x, 1e-12);
  }
}

TEST(NormalizerTest, OutOfRangeExtrapolates) {
  MinMaxNormalizer norm;
  norm.fit(std::vector<double>{0.0, 10.0});
  EXPECT_DOUBLE_EQ(norm.transform(20.0), 2.0);
  EXPECT_DOUBLE_EQ(norm.inverse(-0.5), -5.0);
}

TEST(NormalizerTest, DegenerateRangeMapsToHalf) {
  MinMaxNormalizer norm;
  norm.fit(std::vector<double>{4.0, 4.0, 4.0});
  EXPECT_DOUBLE_EQ(norm.transform(4.0), 0.5);
  EXPECT_DOUBLE_EQ(norm.inverse(0.7), 4.0);
}

TEST(NormalizerTest, UnfittedThrows) {
  MinMaxNormalizer norm;
  EXPECT_THROW(norm.transform(1.0), std::logic_error);
  EXPECT_THROW(norm.inverse(0.5), std::logic_error);
}

TEST(NormalizerTest, EmptyFitThrows) {
  MinMaxNormalizer norm;
  EXPECT_THROW(norm.fit({}), std::invalid_argument);
}

TEST(NormalizerTest, BatchTransforms) {
  MinMaxNormalizer norm;
  norm.fit(std::vector<double>{0.0, 4.0});
  const auto ys = norm.transform(std::vector<double>{1.0, 2.0});
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_DOUBLE_EQ(ys[0], 0.25);
  const auto xs = norm.inverse(ys);
  EXPECT_DOUBLE_EQ(xs[1], 2.0);
}

}  // namespace
}  // namespace corp::dnn
