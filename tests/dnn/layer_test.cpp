#include "dnn/layer.hpp"

#include <gtest/gtest.h>

#include "dnn/loss.hpp"

namespace corp::dnn {
namespace {

TEST(DenseLayerTest, ShapesAndParameterCount) {
  util::Rng rng(1);
  DenseLayer layer(4, 3, Activation::kSigmoid, rng);
  EXPECT_EQ(layer.inputs(), 4u);
  EXPECT_EQ(layer.outputs(), 3u);
  EXPECT_EQ(layer.parameter_count(), 4u * 3u + 3u);
}

TEST(DenseLayerTest, RejectsZeroSizes) {
  util::Rng rng(1);
  EXPECT_THROW(DenseLayer(0, 3, Activation::kSigmoid, rng),
               std::invalid_argument);
  EXPECT_THROW(DenseLayer(3, 0, Activation::kSigmoid, rng),
               std::invalid_argument);
}

TEST(DenseLayerTest, ForwardComputesEq5) {
  util::Rng rng(1);
  DenseLayer layer(2, 1, Activation::kIdentity, rng);
  layer.weights()(0, 0) = 2.0;
  layer.weights()(0, 1) = -1.0;
  layer.bias()[0] = 0.5;
  const Vector& out = layer.forward(std::vector<double>{3.0, 1.0});
  // 2*3 - 1*1 + 0.5 = 5.5
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 5.5);
}

TEST(DenseLayerTest, ForwardWrongSizeThrows) {
  util::Rng rng(1);
  DenseLayer layer(2, 1, Activation::kIdentity, rng);
  EXPECT_THROW(layer.forward(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(DenseLayerTest, BackwardBeforeForwardThrows) {
  util::Rng rng(1);
  DenseLayer layer(2, 1, Activation::kIdentity, rng);
  EXPECT_THROW(layer.backward(std::vector<double>{1.0}), std::logic_error);
}

TEST(DenseLayerTest, ZeroGradClearsAccumulators) {
  util::Rng rng(1);
  DenseLayer layer(2, 2, Activation::kSigmoid, rng);
  layer.forward(std::vector<double>{1.0, -1.0});
  layer.backward(std::vector<double>{0.3, -0.2});
  layer.zero_grad();
  for (double g : layer.grad_weights().flat()) EXPECT_DOUBLE_EQ(g, 0.0);
  for (double g : layer.grad_bias()) EXPECT_DOUBLE_EQ(g, 0.0);
}

// Numerical gradient check: the analytic weight/bias/input gradients of a
// sigmoid layer under 0.5*(t - g)^2 loss must match central differences.
TEST(DenseLayerTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(42);
  DenseLayer layer(3, 2, Activation::kSigmoid, rng);
  const std::vector<double> input{0.3, -0.7, 1.1};
  const std::vector<double> target{0.6, 0.2};

  auto loss_of = [&](DenseLayer& l) {
    const Vector out = l.forward(input);
    return mse(out, target);
  };

  // Analytic gradients.
  layer.zero_grad();
  const Vector out = layer.forward(input);
  Vector grad(out.size());
  mse_gradient(out, target, grad);
  const Vector input_grad = layer.backward(grad);

  const double h = 1e-6;
  // Weights.
  for (std::size_t r = 0; r < layer.outputs(); ++r) {
    for (std::size_t c = 0; c < layer.inputs(); ++c) {
      const double orig = layer.weights()(r, c);
      layer.weights()(r, c) = orig + h;
      const double lp = loss_of(layer);
      layer.weights()(r, c) = orig - h;
      const double lm = loss_of(layer);
      layer.weights()(r, c) = orig;
      EXPECT_NEAR(layer.grad_weights()(r, c), (lp - lm) / (2 * h), 1e-6)
          << "weight (" << r << "," << c << ")";
    }
  }
  // Biases.
  for (std::size_t r = 0; r < layer.outputs(); ++r) {
    const double orig = layer.bias()[r];
    layer.bias()[r] = orig + h;
    const double lp = loss_of(layer);
    layer.bias()[r] = orig - h;
    const double lm = loss_of(layer);
    layer.bias()[r] = orig;
    EXPECT_NEAR(layer.grad_bias()[r], (lp - lm) / (2 * h), 1e-6)
        << "bias " << r;
  }
  // Inputs (Eq. 7 back-propagated error terms).
  for (std::size_t c = 0; c < layer.inputs(); ++c) {
    std::vector<double> ip = input, im = input;
    ip[c] += h;
    im[c] -= h;
    const double lp = mse(layer.forward(ip), target);
    const double lm = mse(layer.forward(im), target);
    EXPECT_NEAR(input_grad[c], (lp - lm) / (2 * h), 1e-6) << "input " << c;
  }
}

TEST(DenseLayerTest, GradientsAccumulateAcrossSamples) {
  util::Rng rng(5);
  DenseLayer layer(2, 1, Activation::kIdentity, rng);
  layer.zero_grad();
  layer.forward(std::vector<double>{1.0, 0.0});
  layer.backward(std::vector<double>{1.0});
  const double after_one = layer.grad_weights()(0, 0);
  layer.forward(std::vector<double>{1.0, 0.0});
  layer.backward(std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(layer.grad_weights()(0, 0), 2.0 * after_one);
}

}  // namespace
}  // namespace corp::dnn
