#include "dnn/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::dnn {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, EmptyDefault) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, RowAccess) {
  Matrix m(2, 2);
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  auto row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 0, -1]^T = [-2, -2]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const Vector y = m.multiply(std::vector<double>{1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(m.multiply_transposed(std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(MatrixTest, MultiplyTransposedMatchesExplicitTranspose) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  // m^T * [1, 2]^T = [9, 12, 15]
  const Vector y = m.multiply_transposed(std::vector<double>{1.0, 2.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(MatrixTest, AddOuterAccumulates) {
  Matrix m(2, 2, 0.0);
  m.add_outer(std::vector<double>{1.0, 2.0}, std::vector<double>{3.0, 4.0},
              0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, AddOuterShapeMismatchThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(
      m.add_outer(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}, 1.0),
      std::invalid_argument);
}

TEST(MatrixTest, AddScaled) {
  Matrix a(1, 2, 1.0);
  Matrix b(1, 2, 2.0);
  a.add_scaled(b, -0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  Matrix wrong(2, 1);
  EXPECT_THROW(a.add_scaled(wrong, 1.0), std::invalid_argument);
}

TEST(MatrixTest, XavierWithinLimit) {
  util::Rng rng(3);
  const Matrix m = Matrix::xavier(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  for (double x : m.flat()) {
    EXPECT_GE(x, -limit);
    EXPECT_LE(x, limit);
  }
}

TEST(MatrixTest, XavierNotAllZero) {
  util::Rng rng(3);
  const Matrix m = Matrix::xavier(5, 5, rng);
  double sum_abs = 0.0;
  for (double x : m.flat()) sum_abs += std::abs(x);
  EXPECT_GT(sum_abs, 0.0);
}

TEST(VectorOpsTest, AxpyAndDot) {
  std::vector<double> y{1.0, 2.0};
  axpy(2.0, std::vector<double>{3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_DOUBLE_EQ(
      dot(std::vector<double>{1.0, 2.0}, std::vector<double>{3.0, 4.0}),
      11.0);
}

TEST(MatrixTest, MultiplyAccumulatesInDoublePrecision) {
  // Width-regression canary for the -Wconversion / CORP-FLT-001 wall:
  // the multiply accumulator must stay double. A narrowed float
  // accumulator collapses 1.0 + 2^-40 to exactly 1.0 (float carries 24
  // mantissa bits), so this test fails under any silent float rewrite.
  const double tiny = std::ldexp(1.0, -40);
  Matrix m(1, 2);
  m(0, 0) = 1.0;
  m(0, 1) = tiny;
  const Vector y = m.multiply(std::vector<double>{1.0, 1.0});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_GT(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[0] - 1.0, tiny);
}

TEST(MatrixTest, MultiplyBatchMatchesMultiplyBitExact) {
  // The GEMM path tiles over batch rows but must keep the scalar path's
  // per-element accumulation order, so every output is bit-identical to
  // multiply() on the same row. Sizes straddle the internal tile width.
  util::Rng rng(11);
  const Matrix weights = Matrix::xavier(7, 5, rng);
  for (std::size_t batch : {1u, 31u, 32u, 33u, 64u, 65u}) {
    Matrix inputs(batch, 5);
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t c = 0; c < 5; ++c) {
        inputs(n, c) = rng.uniform(-2.0, 2.0);
      }
    }
    const Matrix out = weights.multiply_batch(inputs);
    ASSERT_EQ(out.rows(), batch);
    ASSERT_EQ(out.cols(), 7u);
    for (std::size_t n = 0; n < batch; ++n) {
      const Vector y = weights.multiply(inputs.row(n));
      for (std::size_t r = 0; r < 7; ++r) {
        EXPECT_EQ(out(n, r), y[r]) << "batch " << batch << " row " << n;
      }
    }
  }
}

TEST(MatrixTest, MultiplyBatchDimensionMismatchThrows) {
  Matrix m(2, 3);
  Matrix narrow(4, 2);
  EXPECT_THROW(m.multiply_batch(narrow), std::invalid_argument);
}

TEST(VectorOpsTest, DotKeepsDoublePrecision) {
  // Same canary for the shared dot() kernel used by the DNN layers.
  const double tiny = std::ldexp(1.0, -40);
  const double s = dot(std::vector<double>{1.0, tiny},
                       std::vector<double>{1.0, 1.0});
  EXPECT_GT(s, 1.0);
  EXPECT_DOUBLE_EQ(s - 1.0, tiny);
}

}  // namespace
}  // namespace corp::dnn
