#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace corp::util {
namespace {

ArgParser parse(std::vector<const char*> args,
                const std::vector<std::string>& known = {}) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return ArgParser(static_cast<int>(argv.size()), argv.data(), 1, known);
}

TEST(ArgParserTest, SpaceSeparatedValues) {
  const auto args = parse({"--jobs", "150", "--env", "ec2"});
  EXPECT_TRUE(args.has("jobs"));
  EXPECT_EQ(args.get_int("jobs", 0), 150);
  EXPECT_EQ(args.get("env", ""), "ec2");
}

TEST(ArgParserTest, EqualsForm) {
  const auto args = parse({"--seed=42", "--aggressiveness=0.7"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("aggressiveness", 0.0), 0.7);
}

TEST(ArgParserTest, DefaultsWhenAbsent) {
  const auto args = parse({});
  EXPECT_FALSE(args.has("jobs"));
  EXPECT_EQ(args.get_int("jobs", 99), 99);
  EXPECT_EQ(args.get("env", "cluster"), "cluster");
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
}

TEST(ArgParserTest, PositionalArguments) {
  const auto args = parse({"input.csv", "--flag", "v", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(ArgParserTest, MissingValueThrows) {
  EXPECT_THROW(parse({"--jobs"}), std::invalid_argument);
}

TEST(ArgParserTest, UnknownFlagRejectedWhenDeclared) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"jobs"}), std::invalid_argument);
  EXPECT_NO_THROW(parse({"--jobs", "1"}, {"jobs"}));
}

TEST(ArgParserTest, EmptyValueViaEquals) {
  const auto args = parse({"--name="});
  EXPECT_TRUE(args.has("name"));
  EXPECT_EQ(args.get("name", "x"), "");
}

}  // namespace
}  // namespace corp::util
