#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace corp::util {
namespace {

TEST(CsvSplitTest, SimpleFields) {
  const auto fields = split_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvSplitTest, EmptyFields) {
  const auto fields = split_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvSplitTest, QuotedCommas) {
  const auto fields = split_csv_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(CsvSplitTest, EscapedQuotes) {
  const auto fields = split_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvSplitTest, ToleratesCarriageReturn) {
  const auto fields = split_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(escape_csv_field("hello"), "hello");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(escape_csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(escape_csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvRoundTripTest, WriteThenRead) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(std::vector<std::string>{"name", "value"});
  writer.write_row(std::vector<std::string>{"with,comma", "1.5"});
  writer.write_row(std::vector<std::string>{"with\"quote", "-2"});

  std::istringstream in(out.str());
  const CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "with,comma");
  EXPECT_EQ(doc.rows[1][0], "with\"quote");
}

TEST(CsvDocumentTest, ColumnLookup) {
  std::istringstream in("x,y,z\n1,2,3\n");
  const CsvDocument doc = read_csv(in);
  EXPECT_EQ(doc.column("y"), 1u);
  EXPECT_EQ(doc.column("missing"), CsvDocument::npos);
}

TEST(CsvReadTest, SkipsEmptyLines) {
  std::istringstream in("a,b\n\n1,2\n\n3,4\n");
  const CsvDocument doc = read_csv(in);
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(CsvReadTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"),
               std::runtime_error);
}

TEST(CsvWriterTest, DoubleRowsRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(std::vector<std::string>{"v"});
  writer.write_row(std::vector<double>{0.123456789012});
  std::istringstream in(out.str());
  const CsvDocument doc = read_csv(in);
  EXPECT_NEAR(std::stod(doc.rows[0][0]), 0.123456789012, 1e-12);
}

TEST(FormatDoubleTest, CompactOutput) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.25, 3), "0.25");
}

}  // namespace
}  // namespace corp::util
