#include "util/seed_streams.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <set>

#include "util/rng.hpp"

namespace corp::util {
namespace {

// The registry values are load-bearing: every derived seed — and
// therefore every replicated figure — is a function of them. Pin each
// one so an accidental renumbering fails loudly instead of silently
// changing all downstream results.
TEST(SeedStreamTest, RegistryValuesAreFrozen) {
  EXPECT_EQ(seed_stream::kTraining, 1u);
  EXPECT_EQ(seed_stream::kEvaluation, 2u);
  EXPECT_EQ(seed_stream::kSimulation, 3u);
  EXPECT_EQ(seed_stream::kReplica, 0x5245504cULL);
  EXPECT_EQ(seed_stream::kFault, 0x46414C54ULL);
  EXPECT_EQ(seed_stream::kFaultVm, 0x564d4352ULL);
  EXPECT_EQ(seed_stream::kFaultTelemetryGap, 0x54474150ULL);
  EXPECT_EQ(seed_stream::kFaultStraggler, 0x53545247ULL);
  EXPECT_EQ(seed_stream::kFaultPredictor, 0x50464c54ULL);
  EXPECT_EQ(seed_stream::kTrustAdaptation, 0x54525354ULL);
}

TEST(SeedStreamTest, DerivedSeedsDistinctPerStream) {
  // Distinct tags must yield distinct derived seeds off the same base —
  // the whole point of the registry. (all_distinct() already proves the
  // tags differ at compile time; this checks derive_seed keeps them
  // apart after the avalanche.)
  constexpr std::uint64_t kBase = 0xC0FFEEULL;
  std::set<std::uint64_t> derived;
  for (std::uint64_t tag : seed_stream::detail::kAll) {
    derived.insert(derive_seed(kBase, tag));
  }
  EXPECT_EQ(derived.size(),
            std::size(seed_stream::detail::kAll));
}

}  // namespace
}  // namespace corp::util
