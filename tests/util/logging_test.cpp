#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace corp::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, DefaultLevelIsOff) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SetAndGetRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, EmittingBelowLevelIsCheap) {
  set_log_level(LogLevel::kError);
  // These must not crash and, by contract, are filtered out before
  // formatting — exercised here for coverage.
  log_debug("debug ", 1);
  log_info("info ", 2.5);
  log_warn("warn ", "x");
  SUCCEED();
}

TEST_F(LoggingTest, VariadicFormattingCompiles) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_error("value=", 42, " ratio=", 0.5);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[ERROR] value=42 ratio=0.5"), std::string::npos);
}

TEST_F(LoggingTest, FilteredMessagesProduceNoOutput) {
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_info("should not appear");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace corp::util
