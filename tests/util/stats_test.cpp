#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace corp::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(1.0, 3.0);
    (i < 40 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(PercentileTest, ClampsQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(SummaryTest, FullSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 0.1);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.84134474), 1.0, 1e-5);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-4);
}

TEST(NormalQuantileTest, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
}

TEST(NormalQuantileTest, InverseOfCdf) {
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-7);
  }
}

TEST(ZHalfAlphaTest, MatchesConfidenceIntervals) {
  // theta = 0.05 (95% confidence) -> z = 1.96.
  EXPECT_NEAR(z_half_alpha(0.05), 1.959964, 1e-5);
  // theta = 0.10 (90% confidence) -> z = 1.645.
  EXPECT_NEAR(z_half_alpha(0.10), 1.644854, 1e-5);
}

TEST(ZHalfAlphaTest, MonotoneInConfidence) {
  // Higher confidence (smaller theta) gives a wider interval.
  EXPECT_GT(z_half_alpha(0.05), z_half_alpha(0.30));
}

TEST(ZHalfAlphaTest, RejectsOutOfRange) {
  EXPECT_THROW(z_half_alpha(0.0), std::domain_error);
  EXPECT_THROW(z_half_alpha(1.0), std::domain_error);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputs) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> constant{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson(x, {}), 0.0);
}

TEST(ErrorMetricsTest, RmseAndMae) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{1.0, 4.0, 1.0};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt((0.0 + 4.0 + 4.0) / 3.0), 1e-12);
  EXPECT_NEAR(mae(pred, truth), (0.0 + 2.0 + 2.0) / 3.0, 1e-12);
}

TEST(ErrorMetricsTest, MismatchedSizesReturnZero) {
  EXPECT_DOUBLE_EQ(rmse(std::vector<double>{1.0}, std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mae(std::vector<double>{1.0}, std::vector<double>{}), 0.0);
}

TEST(TailMeanTest, MeansTheLastNEntries) {
  const std::vector<double> series{10.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(tail_mean(series, 3), 2.0);
  EXPECT_DOUBLE_EQ(tail_mean(series, 100), 4.0);  // whole series
  EXPECT_DOUBLE_EQ(tail_mean(std::vector<double>{}, 3), 0.0);
}

TEST(TailMeanTest, SkipsGapMarkersInsideTheWindow) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> series{9.0, 2.0, nan, 4.0};
  EXPECT_DOUBLE_EQ(tail_mean(series, 3), 3.0);
}

TEST(TailMeanTest, AllGapWindowFallsBackToLastFiniteSample) {
  // Regression: an all-gap window used to return 0.0 — indistinguishable
  // from "demand was genuinely zero", so a telemetry outage read as free
  // capacity and biased the Eq. 20/21 gate toward over-committing. The
  // last finite observation before the window must carry forward instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> series{0.2, 0.7, nan, nan, nan};
  EXPECT_DOUBLE_EQ(tail_mean(series, 3), 0.7);
  // Only a series that never held a finite sample at all reads as zero.
  const std::vector<double> all_gap{nan, nan, nan};
  EXPECT_DOUBLE_EQ(tail_mean(all_gap, 2), 0.0);
}

// Property: z_half_alpha over the Table II significance range is finite
// and decreasing.
class ZSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZSweepTest, FiniteAndPositive) {
  const double z = z_half_alpha(GetParam());
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_GT(z, 0.0);
}

INSTANTIATE_TEST_SUITE_P(TableIISignificanceLevels, ZSweepTest,
                         ::testing::Values(0.05, 0.10, 0.15, 0.20, 0.25,
                                           0.30));

}  // namespace
}  // namespace corp::util
