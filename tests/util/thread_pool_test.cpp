#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace corp::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForComputesSum) {
  ThreadPool pool(3);
  std::vector<long> partial(1000, 0);
  pool.parallel_for(1000, [&](std::size_t i) {
    partial[i] = static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 999L * 1000 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForDrainsAllChunksWhenOneThrows) {
  // Regression: parallel_for used to rethrow on the first failing future
  // and abandon the rest, while still-queued chunks held references to
  // this frame's locals (`hits` below) — a use-after-return once the
  // caller unwound. The fix drains every future before rethrowing, so
  // after the throw every non-throwing iteration must have run exactly
  // once and nothing may touch the frame afterwards (ASan/TSan-visible).
  ThreadPool pool(4);
  constexpr std::size_t kIters = 512;
  std::vector<std::atomic<int>> hits(kIters);
  std::atomic<int> throws{0};
  EXPECT_THROW(pool.parallel_for(kIters,
                                 [&](std::size_t i) {
                                   if (i == 3) {
                                     ++throws;
                                     throw std::runtime_error("mid-chunk");
                                   }
                                   ++hits[i];
                                 }),
               std::runtime_error);
  EXPECT_EQ(throws.load(), 1);
  EXPECT_EQ(hits[3].load(), 0);
  // Iterations after the throw in the SAME chunk are legitimately skipped
  // (a chunk runs sequentially); every other chunk must have completed by
  // the time the exception escapes. Chunks here are ceil(512/16) = 32
  // wide, so everything from index 32 on belongs to a non-throwing chunk.
  for (std::size_t i = 32; i < kIters; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "iteration " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexedFailure) {
  // With several failing chunks the exception of the lowest-indexed one
  // wins, deterministically, regardless of completion order.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      pool.parallel_for(400, [](std::size_t i) {
        if (i == 17) throw std::runtime_error("first");
        if (i >= 300) throw std::logic_error("later");
      });
      FAIL() << "parallel_for did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    } catch (const std::logic_error&) {
      FAIL() << "later chunk's exception won over the first chunk's";
    }
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace corp::util
