#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace corp::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForComputesSum) {
  ThreadPool pool(3);
  std::vector<long> partial(1000, 0);
  pool.parallel_for(1000, [&](std::size_t i) {
    partial[i] = static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 999L * 1000 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace corp::util
