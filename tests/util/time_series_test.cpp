#include "util/time_series.hpp"

#include <gtest/gtest.h>

namespace corp::util {
namespace {

TEST(TimeSeriesTest, StartsEmpty) {
  TimeSeries ts(4);
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.capacity(), 4u);
}

TEST(TimeSeriesTest, ZeroCapacityCoercedToOne) {
  TimeSeries ts(0);
  EXPECT_EQ(ts.capacity(), 1u);
  ts.push(1.0);
  ts.push(2.0);
  EXPECT_DOUBLE_EQ(ts.back(), 2.0);
}

TEST(TimeSeriesTest, PushAndIndexChronological) {
  TimeSeries ts(3);
  ts.push(1.0);
  ts.push(2.0);
  EXPECT_DOUBLE_EQ(ts.at(0), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(1), 2.0);
  EXPECT_DOUBLE_EQ(ts.back(), 2.0);
}

TEST(TimeSeriesTest, EvictsOldestWhenFull) {
  TimeSeries ts(3);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) ts.push(x);
  EXPECT_TRUE(ts.full());
  EXPECT_DOUBLE_EQ(ts.at(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.at(2), 5.0);
}

TEST(TimeSeriesTest, AtOutOfRangeThrows) {
  TimeSeries ts(3);
  ts.push(1.0);
  EXPECT_THROW(ts.at(1), std::out_of_range);
  TimeSeries empty(2);
  EXPECT_THROW(empty.back(), std::out_of_range);
}

TEST(TimeSeriesTest, LastReturnsMostRecent) {
  TimeSeries ts(5);
  for (double x : {1.0, 2.0, 3.0, 4.0}) ts.push(x);
  const auto last2 = ts.last(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_DOUBLE_EQ(last2[0], 3.0);
  EXPECT_DOUBLE_EQ(last2[1], 4.0);
}

TEST(TimeSeriesTest, LastClampsToSize) {
  TimeSeries ts(5);
  ts.push(7.0);
  const auto all = ts.last(100);
  ASSERT_EQ(all.size(), 1u);
}

TEST(TimeSeriesTest, SnapshotAfterWrap) {
  TimeSeries ts(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) ts.push(x);
  const auto snap = ts.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0], 2.0);
  EXPECT_DOUBLE_EQ(snap[2], 4.0);
}

TEST(TimeSeriesTest, MinMaxMean) {
  TimeSeries ts(10);
  for (double x : {4.0, 1.0, 7.0}) ts.push(x);
  EXPECT_DOUBLE_EQ(ts.min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.max(), 7.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 4.0);
}

TEST(TimeSeriesTest, EmptyStatsAreZero) {
  TimeSeries ts(4);
  EXPECT_DOUBLE_EQ(ts.min(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
}

TEST(TimeSeriesTest, ClearEmpties) {
  TimeSeries ts(4);
  ts.push(1.0);
  ts.clear();
  EXPECT_TRUE(ts.empty());
  ts.push(9.0);
  EXPECT_DOUBLE_EQ(ts.back(), 9.0);
}

TEST(WindowRangesTest, ComputesPerWindowRange) {
  const std::vector<double> series{1.0, 3.0, 2.0, 8.0, 5.0, 5.0};
  const auto ranges = window_ranges(series, 2);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_DOUBLE_EQ(ranges[0], 2.0);
  EXPECT_DOUBLE_EQ(ranges[1], 6.0);
  EXPECT_DOUBLE_EQ(ranges[2], 0.0);
}

TEST(WindowRangesTest, DropsTrailingPartialWindow) {
  const std::vector<double> series{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ranges = window_ranges(series, 2);
  EXPECT_EQ(ranges.size(), 2u);
}

TEST(WindowRangesTest, DegenerateInputs) {
  EXPECT_TRUE(window_ranges({}, 3).empty());
  const std::vector<double> series{1.0, 2.0};
  EXPECT_TRUE(window_ranges(series, 0).empty());
  EXPECT_TRUE(window_ranges(series, 3).empty());
}

}  // namespace
}  // namespace corp::util
