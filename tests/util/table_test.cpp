#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace corp::util {
namespace {

TEST(TextTableTest, HeaderAppearsInOutput) {
  TextTable table({"method", "value"});
  table.add_row({"CORP", "0.75"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("CORP"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatsWithPrecision) {
  TextTable table({"x", "y"});
  table.add_row("50", {0.123456}, 4);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("0.1235"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.rows(), 1u);
  // Rendering must not crash and includes the separator line.
  const std::string out = table.to_string();
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable table({"name", "v"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-name", "2"});
  const std::string out = table.to_string();
  // Both data lines should place the second column at the same offset.
  std::istringstream is(out);
  std::string line, l1, l2;
  std::getline(is, line);  // header
  std::getline(is, line);  // separator
  std::getline(is, l1);
  std::getline(is, l2);
  EXPECT_EQ(l1.find(" 1"), l2.find(" 2"));
}

TEST(TextTableTest, PrintWritesToStream) {
  TextTable table({"h"});
  table.add_row({"x"});
  std::ostringstream os;
  table.print(os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace corp::util
