#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>

namespace corp::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u) << "all values in [2,5] should appear";
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, BernoulliClampsProbability) {
  Rng rng(17);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsFirst) {
  Rng rng(29);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.categorical(weights), 0u);
}

TEST(RngTest, CategoricalNegativeWeightsTreatedAsZero) {
  Rng rng(29);
  const std::vector<double> weights{-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.categorical(weights), 1u);
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, PermutationEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng parent(37);
  Rng child = parent.fork();
  // Parent and child should produce different sequences.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform(0, 1) == child.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(41), b(41);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(ca.uniform(0, 1), cb.uniform(0, 1));
  }
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(SplitMix64Test, MixIsDeterministicAndNontrivial) {
  EXPECT_EQ(splitmix64_mix(0x12345678ULL), splitmix64_mix(0x12345678ULL));
  // 0 is the finalizer's only fixed point; derive_seed never feeds it 0
  // because the gamma offset is added first.
  EXPECT_EQ(splitmix64_mix(0), 0u);
  EXPECT_NE(splitmix64_mix(1), 1u);
  EXPECT_NE(splitmix64_mix(1), splitmix64_mix(2));
}

TEST(SplitMix64Test, MixAvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits; a
  // weak mixer (like the old additive seed scheme) fails this badly.
  const std::uint64_t base = 7;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t diff =
        splitmix64_mix(base) ^ splitmix64_mix(base ^ (1ULL << bit));
    const int flipped = std::popcount(diff);
    EXPECT_GT(flipped, 12) << "bit " << bit;
    EXPECT_LT(flipped, 52) << "bit " << bit;
  }
}

TEST(SplitMix64Test, NextAdvancesState) {
  std::uint64_t state = 99;
  const std::uint64_t a = splitmix64_next(state);
  const std::uint64_t b = splitmix64_next(state);
  EXPECT_NE(a, b);
  std::uint64_t replay = 99;
  EXPECT_EQ(splitmix64_next(replay), a);
  EXPECT_EQ(splitmix64_next(replay), b);
}

TEST(DeriveSeedTest, DeterministicPerPair) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  EXPECT_EQ(derive_seed(7, 3, 11), derive_seed(7, 3, 11));
}

TEST(DeriveSeedTest, DistinctStreamsFromOneBase) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeedTest, NoCollisionsAcrossConsecutiveBaseSeeds) {
  // The regression the SplitMix64 scheme exists to prevent: with the old
  // additive formula `base + 1000*(r+1)`, replica r+1 of base S collided
  // with replica r of base S+1000. Consecutive bases with many streams
  // must stay fully disjoint.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 100; ++base) {
    for (std::uint64_t stream = 0; stream < 100; ++stream) {
      seen.insert(derive_seed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 100u * 100u);
}

TEST(DeriveSeedTest, SubstreamIndependentOfStream) {
  EXPECT_NE(derive_seed(7, 1, 2), derive_seed(7, 2, 1));
  EXPECT_NE(derive_seed(7, 1, 2), derive_seed(7, 1));
}

}  // namespace
}  // namespace corp::util
