// Deterministic in-test trace fixtures for the streaming-ingest tests:
// writes small Google cluster-usage v2 task_usage CSV files (the same
// layout tools/make_trace_fixture.py generates at CI scale) so the
// stream-reader and replay tests exercise the real
// parse -> window -> resample path without shipping data files.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace corp::testfix {

/// 5-minute coarse usage window, microseconds (the trace's native unit).
inline constexpr std::int64_t kWindowUs = 300'000'000;
/// Arbitrary non-zero trace start; submit slots count from it.
inline constexpr std::int64_t kEpochUs = 600'000'000;

/// One task_usage row (13 columns; only start/end/job_id, mean_cpu,
/// canonical_mem and mean_disk_space carry signal).
inline std::string google_row(std::int64_t start_us, std::int64_t end_us,
                              std::uint64_t job_id, double cpu, double mem,
                              double disk) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%lld,%lld,%llu,0,%llu,%.6f,%.6f,0,0,0,0,0,%.6f\n",
                static_cast<long long>(start_us),
                static_cast<long long>(end_us),
                static_cast<unsigned long long>(job_id),
                static_cast<unsigned long long>(job_id % 997), cpu, mem,
                disk);
  return std::string(buf);
}

/// Writes a self-describing google-v2 fixture: `windows` periods of
/// `singles_per_window` single-window tasks (every tenth split into two
/// half-window records the reader must merge) plus two multi-window
/// tasks per period (dropped under kDrop, split under kSegment). Rows
/// are start-sorted, as in the real download. Returns the number of
/// single-window tasks — the jobs a kDrop ingest keeps.
inline std::size_t write_google_fixture(const std::string& path,
                                        std::size_t windows,
                                        std::size_t singles_per_window,
                                        std::uint64_t seed) {
  struct Multi {
    std::uint64_t id = 0;
    int windows_left = 0;
    double cpu = 0.0;
    double mem = 0.0;
  };
  util::Rng rng(seed);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "#corp-trace schema=google-v2\n";
  std::uint64_t next_id = 1;
  std::size_t singles = 0;
  std::vector<Multi> active;
  for (std::size_t w = 0; w < windows || !active.empty(); ++w) {
    const std::int64_t start =
        kEpochUs + static_cast<std::int64_t>(w) * kWindowUs;
    std::vector<std::pair<std::int64_t, std::string>> rows;
    for (Multi& m : active) {
      --m.windows_left;
      rows.emplace_back(
          start, google_row(start, start + kWindowUs, m.id, m.cpu, m.mem,
                            0.0005));
    }
    std::erase_if(active,
                  [](const Multi& m) { return m.windows_left <= 0; });
    if (w < windows) {
      for (std::size_t i = 0; i < singles_per_window; ++i) {
        const double cpu = rng.uniform(0.004, 0.02);
        const double mem = rng.uniform(0.003, 0.012);
        const double disk = rng.uniform(0.0002, 0.001);
        const std::uint64_t id = next_id++;
        ++singles;
        if (i % 10 == 0) {
          const std::int64_t half = start + kWindowUs / 2;
          rows.emplace_back(
              start, google_row(start, half, id, cpu, mem, disk));
          rows.emplace_back(
              half, google_row(half, start + kWindowUs, id, cpu * 1.5, mem,
                               disk));
        } else {
          rows.emplace_back(
              start,
              google_row(start, start + kWindowUs, id, cpu, mem, disk));
        }
      }
      for (int k = 0; k < 2; ++k) {
        Multi m;
        m.id = next_id++;
        m.windows_left = rng.bernoulli(0.5) ? 2 : 3;
        m.cpu = rng.uniform(0.004, 0.02);
        m.mem = rng.uniform(0.003, 0.012);
        --m.windows_left;
        rows.emplace_back(
            start, google_row(start, start + kWindowUs, m.id, m.cpu, m.mem,
                              0.0005));
        if (m.windows_left > 0) active.push_back(m);
      }
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& row : rows) out << row.second;
  }
  return singles;
}

}  // namespace corp::testfix
