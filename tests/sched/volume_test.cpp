#include "sched/volume.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corp::sched {
namespace {

TEST(VolumeTest, Eq22PaperExample) {
  // Sec. III-B: C' = <25, 2, 30>; VM1 unused <5, 0, 20> -> 0.867.
  const ResourceVector max_cap(25, 2, 30);
  EXPECT_NEAR(unused_volume(ResourceVector(5, 0, 20), max_cap), 0.8667,
              1e-3);
  EXPECT_NEAR(unused_volume(ResourceVector(10, 1, 10), max_cap), 1.2333,
              1e-3);
  EXPECT_NEAR(unused_volume(ResourceVector(20, 2, 30), max_cap), 2.8, 1e-3);
  EXPECT_NEAR(unused_volume(ResourceVector(10, 1, 8.5), max_cap), 1.1833,
              1e-3);
}

TEST(VolumeTest, ZeroCapacityComponentSkipped) {
  EXPECT_DOUBLE_EQ(
      unused_volume(ResourceVector(5, 5, 5), ResourceVector(10, 0, 10)),
      1.0);
}

std::vector<VmAvailability> paper_vms() {
  // The Fig. 5 walk-through: four VMs with the listed unused vectors.
  return {{1, ResourceVector(5, 0, 20)},
          {2, ResourceVector(10, 1, 10)},
          {3, ResourceVector(20, 2, 30)},
          {4, ResourceVector(10, 1, 8.5)}};
}

TEST(MostMatchedTest, ReproducesPaperEntityPlacement) {
  const ResourceVector max_cap(25, 2, 30);
  // Entity (job3, job4) demand: feasible on VM2 and VM3 only; VM2's
  // volume (1.233) < VM3's (2.8) -> pick VM2 (index 1).
  const ResourceVector entity_34(8, 1, 9);
  const auto pick = most_matched(paper_vms(), entity_34, max_cap);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(paper_vms()[*pick].vm_id, 2u);
}

TEST(MostMatchedTest, SecondEntityPrefersVm4) {
  const ResourceVector max_cap(25, 2, 30);
  // Entity (job5, job6): feasible on VM2, VM3, VM4; VM4's volume is the
  // smallest (1.183 < 1.233 < 2.8).
  const ResourceVector entity_56(9, 1, 8);
  const auto pick = most_matched(paper_vms(), entity_56, max_cap);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(paper_vms()[*pick].vm_id, 4u);
}

TEST(MostMatchedTest, InfeasibleEverywhereReturnsNull) {
  const ResourceVector max_cap(25, 2, 30);
  EXPECT_FALSE(
      most_matched(paper_vms(), ResourceVector(100, 1, 1), max_cap)
          .has_value());
}

TEST(MostMatchedTest, EmptyCandidates) {
  EXPECT_FALSE(most_matched({}, ResourceVector(1, 1, 1),
                            ResourceVector(10, 10, 10))
                   .has_value());
}

TEST(RandomFeasibleTest, OnlyPicksFeasible) {
  const std::vector<VmAvailability> vms{
      {1, ResourceVector(1, 1, 1)},
      {2, ResourceVector(10, 10, 10)},
      {3, ResourceVector(2, 2, 2)},
  };
  const ResourceVector demand(5, 5, 5);
  for (double pick : {0.0, 0.3, 0.7, 0.999}) {
    const auto idx = random_feasible(vms, demand, pick);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(vms[*idx].vm_id, 2u);
  }
}

TEST(RandomFeasibleTest, SpansAllFeasible) {
  const std::vector<VmAvailability> vms{
      {1, ResourceVector(10, 10, 10)},
      {2, ResourceVector(10, 10, 10)},
  };
  const ResourceVector demand(1, 1, 1);
  EXPECT_EQ(vms[*random_feasible(vms, demand, 0.0)].vm_id, 1u);
  EXPECT_EQ(vms[*random_feasible(vms, demand, 0.99)].vm_id, 2u);
}

TEST(RandomFeasibleTest, NoneFeasibleReturnsNull) {
  const std::vector<VmAvailability> vms{{1, ResourceVector(1, 1, 1)}};
  EXPECT_FALSE(
      random_feasible(vms, ResourceVector(2, 2, 2), 0.5).has_value());
}

TEST(RandomFeasibleTest, UnitUniformPicksLastFeasible) {
  // Regression: u == 1.0 (the rng's uniform(0.0, 1.0) can return exactly
  // 1.0) must clamp onto the last feasible index instead of reading one
  // past the end of the feasible list.
  const std::vector<VmAvailability> vms{
      {1, ResourceVector(10, 10, 10)},
      {2, ResourceVector(1, 1, 1)},
      {3, ResourceVector(10, 10, 10)},
  };
  const auto idx = random_feasible(vms, ResourceVector(5, 5, 5), 1.0);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(vms[*idx].vm_id, 3u);
}

TEST(RandomFeasibleTest, SingleCandidateAlwaysPicked) {
  // With one feasible VM, every u in [0, 1] — including the endpoints —
  // must land on it (the floor(u * n) index would be 1 at u == 1.0; the
  // clamp keeps it at 0).
  const std::vector<VmAvailability> vms{{7, ResourceVector(5, 5, 5)}};
  const ResourceVector demand(1, 1, 1);
  for (double u : {0.0, 0.25, 0.5, 0.75, 0.999, 1.0}) {
    const auto idx = random_feasible(vms, demand, u);
    ASSERT_TRUE(idx.has_value()) << "u = " << u;
    EXPECT_EQ(vms[*idx].vm_id, 7u) << "u = " << u;
  }
}

TEST(RandomFeasibleTest, PickClamped) {
  const std::vector<VmAvailability> vms{{1, ResourceVector(5, 5, 5)}};
  EXPECT_TRUE(random_feasible(vms, ResourceVector(1, 1, 1), 1.5).has_value());
  EXPECT_TRUE(
      random_feasible(vms, ResourceVector(1, 1, 1), -0.5).has_value());
}

}  // namespace
}  // namespace corp::sched
