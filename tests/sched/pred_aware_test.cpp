// PredictionAwareScheduler differential and TrustController unit tests.
//
// The λ endpoints are contracts, not approximations: λ=1 must reproduce
// CorpScheduler decision-for-decision (same pools, same carve sizing,
// same tie-breaking) and λ=0 must reproduce CorpScheduler with
// opportunistic placement disabled. The blend expressions are chosen to
// be IEEE-exact at the endpoints, so these tests EXPECT_EQ doubles.
#include <gtest/gtest.h>

#include <vector>

#include "sched/corp_scheduler.hpp"
#include "sched/pred_aware_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sched/trust.hpp"

namespace corp::sched {
namespace {

Job make_job(std::uint64_t id, double cpu, double mem, double sto) {
  Job job;
  job.id = id;
  job.duration_slots = 2;
  job.request = ResourceVector(cpu, mem, sto);
  job.usage.assign(2, ResourceVector(cpu / 2, mem / 2, sto / 2));
  return job;
}

struct Fixture {
  std::vector<VmView> views;
  util::Rng rng{99};

  SchedulerContext context() {
    SchedulerContext ctx;
    ctx.vms = views;
    ctx.max_vm_capacity = ResourceVector(8, 32, 180);
    ctx.rng = &rng;
    return ctx;
  }
};

/// Mixed availability: an unlocked predicted-unused pool, a locked one,
/// and plain unallocated capacity — enough texture that the opportunistic
/// and fresh paths both see real choices.
Fixture mixed_fixture() {
  Fixture f;
  VmView v0;
  v0.vm_id = 0;
  v0.predicted_unused = ResourceVector(4, 16, 90);
  v0.unlocked = true;
  v0.unallocated = ResourceVector(0.5, 2, 10);
  VmView v1;
  v1.vm_id = 1;
  v1.predicted_unused = ResourceVector(2, 8, 40);
  v1.unlocked = false;  // gate locked: fresh-only
  v1.unallocated = ResourceVector(8, 32, 180);
  VmView v2;
  v2.vm_id = 2;
  v2.predicted_unused = ResourceVector(3, 10, 50);
  v2.unlocked = true;
  v2.unallocated = ResourceVector(4, 16, 90);
  f.views = {v0, v1, v2};
  return f;
}

std::vector<Job> make_batch_jobs() {
  return {make_job(1, 1.0, 4.0, 10.0), make_job(2, 2.0, 0.5, 5.0),
          make_job(3, 0.5, 8.0, 5.0), make_job(4, 1.5, 6.0, 20.0)};
}

std::vector<const Job*> pointers(const std::vector<Job>& jobs) {
  std::vector<const Job*> batch;
  for (const Job& job : jobs) batch.push_back(&job);
  return batch;
}

void expect_identical(const std::vector<PlacementDecision>& lhs,
                      const std::vector<PlacementDecision>& rhs) {
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].batch_indices, rhs[i].batch_indices) << "decision " << i;
    EXPECT_EQ(lhs[i].vm_id, rhs[i].vm_id) << "decision " << i;
    EXPECT_EQ(lhs[i].kind, rhs[i].kind) << "decision " << i;
    EXPECT_EQ(lhs[i].allocated, rhs[i].allocated) << "decision " << i;
    EXPECT_EQ(lhs[i].request_fraction, rhs[i].request_fraction)
        << "decision " << i;
  }
}

TEST(PredAwareDifferentialTest, FullTrustMatchesCorpExactly) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);

  Fixture corp_fixture = mixed_fixture();
  CorpScheduler corp;
  const auto corp_ctx = corp_fixture.context();
  const auto corp_decisions = corp.place(batch, corp_ctx);

  Fixture pa_fixture = mixed_fixture();
  PredictionAwareConfig config;
  config.trust = 1.0;
  PredictionAwareScheduler pred_aware(config);
  const auto pa_ctx = pa_fixture.context();
  const auto pa_decisions = pred_aware.place(batch, pa_ctx);

  ASSERT_FALSE(corp_decisions.empty());
  expect_identical(pa_decisions, corp_decisions);
  EXPECT_EQ(pred_aware.current_trust(), 1.0);
}

TEST(PredAwareDifferentialTest, ZeroTrustMatchesDemandBasedCorp) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);

  Fixture corp_fixture = mixed_fixture();
  CorpSchedulerConfig demand_based;
  demand_based.enable_opportunistic = false;
  CorpScheduler corp(demand_based);
  const auto corp_ctx = corp_fixture.context();
  const auto corp_decisions = corp.place(batch, corp_ctx);

  Fixture pa_fixture = mixed_fixture();
  PredictionAwareConfig config;
  config.trust = 0.0;
  PredictionAwareScheduler pred_aware(config);
  const auto pa_ctx = pa_fixture.context();
  const auto pa_decisions = pred_aware.place(batch, pa_ctx);

  ASSERT_FALSE(corp_decisions.empty());
  expect_identical(pa_decisions, corp_decisions);
  for (const PlacementDecision& d : pa_decisions) {
    EXPECT_EQ(d.kind, AllocationKind::kReserved);
    EXPECT_EQ(d.request_fraction, 1.0);
  }
}

TEST(PredAwareDifferentialTest, TrustOutsideUnitIntervalIsClamped) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);

  Fixture reference_fixture = mixed_fixture();
  PredictionAwareConfig one;
  one.trust = 1.0;
  PredictionAwareScheduler at_one(one);
  const auto ref_ctx = reference_fixture.context();
  const auto reference = at_one.place(batch, ref_ctx);

  Fixture clamped_fixture = mixed_fixture();
  PredictionAwareConfig above;
  above.trust = 7.5;
  PredictionAwareScheduler clamped(above);
  const auto clamped_ctx = clamped_fixture.context();
  expect_identical(clamped.place(batch, clamped_ctx), reference);
  EXPECT_EQ(clamped.current_trust(), 1.0);
}

TEST(PredAwareDifferentialTest, InteriorTrustBlendsCarveSizing) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);

  Fixture f = mixed_fixture();
  PredictionAwareConfig config;
  config.trust = 0.5;
  PredictionAwareScheduler pred_aware(config);
  const auto ctx = f.context();
  const auto decisions = pred_aware.place(batch, ctx);

  const double expected_fraction =
      0.5 * config.corp.opportunistic_sizing + 0.5;
  bool saw_opportunistic = false;
  for (const PlacementDecision& d : decisions) {
    if (d.kind != AllocationKind::kOpportunistic) continue;
    saw_opportunistic = true;
    EXPECT_EQ(d.request_fraction, expected_fraction);
    // Interior carve is wider than the fully-trusting one: as trust
    // falls the scheduler admits fewer entities but sizes each closer to
    // its worst-case demand.
    EXPECT_GT(d.request_fraction, config.corp.opportunistic_sizing);
    EXPECT_LT(d.request_fraction, 1.0);
  }
  EXPECT_TRUE(saw_opportunistic);
}

TEST(PredAwareDifferentialTest, OpportunisticAdmissionShrinksWithTrust) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);
  std::size_t previous = 0;
  bool first = true;
  for (const double lambda : {1.0, 0.6, 0.2, 0.0}) {
    Fixture f = mixed_fixture();
    PredictionAwareConfig config;
    config.trust = lambda;
    PredictionAwareScheduler pred_aware(config);
    const auto ctx = f.context();
    std::size_t opportunistic = 0;
    for (const PlacementDecision& d : pred_aware.place(batch, ctx)) {
      if (d.kind == AllocationKind::kOpportunistic) ++opportunistic;
    }
    if (!first) {
      EXPECT_LE(opportunistic, previous) << "lambda " << lambda;
    }
    previous = opportunistic;
    first = false;
  }
  EXPECT_EQ(previous, 0u);  // λ=0 never places opportunistically
}

TEST(PredAwareDifferentialTest, DisabledOpportunisticOverridesTrust) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);
  Fixture f = mixed_fixture();
  PredictionAwareConfig config;
  config.trust = 1.0;
  config.corp.enable_opportunistic = false;
  PredictionAwareScheduler pred_aware(config);
  const auto ctx = f.context();
  for (const PlacementDecision& d : pred_aware.place(batch, ctx)) {
    EXPECT_EQ(d.kind, AllocationKind::kReserved);
  }
}

TEST(PredAwareTieBreakTest, InteriorTrustTiesResolveWithinTiedSet) {
  // Two unlocked VMs with identical predicted-unused pools: every feasible
  // volume is an exact tie, which the reference rule would resolve to the
  // lower VM index forever. At interior λ the tie-break stream picks among
  // the tied set; the choice must stay within it and be reproducible.
  Fixture f;
  for (std::uint32_t id = 0; id < 2; ++id) {
    VmView vm;
    vm.vm_id = id;
    vm.predicted_unused = ResourceVector(4, 16, 90);
    vm.unlocked = true;
    vm.unallocated = ResourceVector(8, 32, 180);
    f.views.push_back(vm);
  }
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};

  PredictionAwareConfig config;
  config.trust = 0.5;
  config.seed = 7;
  PredictionAwareScheduler first(config);
  PredictionAwareScheduler second(config);
  const auto ctx = f.context();
  const auto a = first.place(batch, ctx);
  const auto b = second.place(batch, ctx);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].kind, AllocationKind::kOpportunistic);
  EXPECT_LE(a[0].vm_id, 1u);
  // Same seed, same fixture: the draw is reproducible.
  EXPECT_EQ(a[0].vm_id, b[0].vm_id);
}

TEST(PredAwareTieBreakTest, EndpointsNeverDraw) {
  // At λ=1 the tied set must resolve exactly like CorpScheduler (first
  // candidate), whatever the tie-break seed says.
  Fixture f;
  for (std::uint32_t id = 0; id < 3; ++id) {
    VmView vm;
    vm.vm_id = id;
    vm.predicted_unused = ResourceVector(4, 16, 90);
    vm.unlocked = true;
    vm.unallocated = ResourceVector(8, 32, 180);
    f.views.push_back(vm);
  }
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  for (const std::uint64_t seed : {7ULL, 1234567ULL}) {
    PredictionAwareConfig config;
    config.trust = 1.0;
    config.seed = seed;
    PredictionAwareScheduler pred_aware(config);
    CorpScheduler corp;
    const auto ctx = f.context();
    const auto pa = pred_aware.place(batch, ctx);
    const auto reference = corp.place(batch, ctx);
    ASSERT_EQ(pa.size(), 1u);
    ASSERT_EQ(reference.size(), 1u);
    EXPECT_EQ(pa[0].vm_id, reference[0].vm_id) << "seed " << seed;
  }
}

TEST(PredAwareAdaptiveTest, AdaptiveModeFollowsSignals) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);
  PredictionAwareConfig config;
  config.adaptive = true;
  PredictionAwareScheduler pred_aware(config);

  // Healthy signals: full trust, matches CorpScheduler.
  Fixture healthy = mixed_fixture();
  TrustSignals good;
  auto ctx = healthy.context();
  ctx.trust = &good;
  const auto trusting = pred_aware.place(batch, ctx);
  EXPECT_EQ(pred_aware.current_trust(), 1.0);
  Fixture corp_fixture = mixed_fixture();
  CorpScheduler corp;
  const auto corp_ctx = corp_fixture.context();
  expect_identical(trusting, corp.place(batch, corp_ctx));

  // Reserved-only signals: trust collapses to 0 and every placement is
  // a demand-based reservation.
  Fixture degraded = mixed_fixture();
  TrustSignals bad;
  bad.tier = predict::DegradationTier::kReservedOnly;
  auto bad_ctx = degraded.context();
  bad_ctx.trust = &bad;
  for (const PlacementDecision& d : pred_aware.place(batch, bad_ctx)) {
    EXPECT_EQ(d.kind, AllocationKind::kReserved);
  }
  EXPECT_EQ(pred_aware.current_trust(), 0.0);
}

TEST(PredAwareAdaptiveTest, MissingSignalsDefaultToFullTrust) {
  const std::vector<Job> jobs = make_batch_jobs();
  const std::vector<const Job*> batch = pointers(jobs);
  PredictionAwareConfig config;
  config.adaptive = true;
  PredictionAwareScheduler pred_aware(config);
  Fixture f = mixed_fixture();
  const auto ctx = f.context();  // ctx.trust left null
  pred_aware.place(batch, ctx);
  EXPECT_EQ(pred_aware.current_trust(), 1.0);
}

TEST(TrustControllerTest, HealthySignalsGiveFullTrust) {
  TrustController controller;
  EXPECT_EQ(controller.update(TrustSignals{}), 1.0);
  EXPECT_EQ(controller.lambda(), 1.0);
}

TEST(TrustControllerTest, ReservedOnlyGivesZeroRegardlessOfFloor) {
  TrustAdaptationConfig config;
  config.floor = 0.3;
  TrustController controller(config);
  TrustSignals signals;
  signals.tier = predict::DegradationTier::kReservedOnly;
  signals.window_fault_fraction = 0.0;
  signals.min_gate_probability = 1.0;
  EXPECT_EQ(controller.update(signals), 0.0);
}

TEST(TrustControllerTest, FallbackTierCapsTrust) {
  TrustController controller;
  TrustSignals signals;
  signals.tier = predict::DegradationTier::kFallback;
  const double lambda = controller.update(signals);
  EXPECT_EQ(lambda, TrustAdaptationConfig{}.fallback_cap);
}

TEST(TrustControllerTest, FaultFractionPenaltyIsContinuous) {
  TrustController controller;
  double previous = 1.0;
  for (const double fraction : {0.0, 0.05, 0.10, 0.25, 0.5, 1.0}) {
    TrustSignals signals;
    signals.window_fault_fraction = fraction;
    const double lambda = controller.update(signals);
    EXPECT_LE(lambda, previous) << "fraction " << fraction;
    previous = lambda;
  }
  // Default exponent 2: a 10% faulty window costs 19% trust, not a cliff.
  TrustSignals ten_percent;
  ten_percent.window_fault_fraction = 0.10;
  EXPECT_NEAR(controller.update(ten_percent), 0.81, 1e-12);
  TrustSignals all_faulty;
  all_faulty.window_fault_fraction = 1.0;
  EXPECT_EQ(controller.update(all_faulty), 0.0);
}

TEST(TrustControllerTest, GateMarginScalesTrust) {
  TrustController controller;
  TrustSignals signals;
  signals.min_gate_probability = 0.475;
  signals.probability_threshold = 0.95;
  EXPECT_NEAR(controller.update(signals), 0.5, 1e-12);
  // At or above threshold the margin saturates at 1.
  signals.min_gate_probability = 2.0;
  EXPECT_EQ(controller.update(signals), 1.0);
  // A zero threshold cannot divide; the margin term drops out.
  signals.probability_threshold = 0.0;
  signals.min_gate_probability = 0.0;
  EXPECT_EQ(controller.update(signals), 1.0);
}

TEST(TrustControllerTest, FloorBoundsDegradedTrust) {
  TrustAdaptationConfig config;
  config.floor = 0.25;
  TrustController controller(config);
  TrustSignals signals;
  signals.window_fault_fraction = 0.9;
  signals.min_gate_probability = 0.01;
  EXPECT_EQ(controller.update(signals), 0.25);
}

}  // namespace
}  // namespace corp::sched
