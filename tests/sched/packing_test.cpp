#include "sched/packing.hpp"

#include <gtest/gtest.h>

namespace corp::sched {
namespace {

Job make_job(std::uint64_t id, double cpu, double mem, double sto) {
  Job job;
  job.id = id;
  job.duration_slots = 1;
  job.request = ResourceVector(cpu, mem, sto);
  job.usage.assign(1, ResourceVector(cpu / 2, mem / 2, sto / 2));
  return job;
}

TEST(DeviationTest, MatchesPaperExample) {
  // Sec. III-B's Fig. 5 narrative: DV(job3, job4) = 25, DV(job3, job5)=16
  // for demands with pairwise differences 5 and 4 on two resource types
  // (each difference d contributes 2*(d/2)^2 = d^2/2 per type).
  // Construct vectors reproducing DV = 25 and 16:
  // |a-b| per type: (5, 5, 0) -> DV = 25; (4, 4, 0) -> DV = 16.
  EXPECT_DOUBLE_EQ(
      demand_deviation(ResourceVector(5, 0, 1), ResourceVector(0, 5, 1)),
      25.0);
  EXPECT_DOUBLE_EQ(
      demand_deviation(ResourceVector(4, 0, 1), ResourceVector(0, 4, 1)),
      16.0);
}

TEST(DeviationTest, SymmetricAndZeroOnEqual) {
  const ResourceVector a(1, 2, 3), b(3, 1, 2);
  EXPECT_DOUBLE_EQ(demand_deviation(a, b), demand_deviation(b, a));
  EXPECT_DOUBLE_EQ(demand_deviation(a, a), 0.0);
}

TEST(PackingTest, PairsComplementaryDominants) {
  const Job cpu_job = make_job(1, 8.0, 1.0, 1.0);
  const Job mem_job = make_job(2, 1.0, 8.0, 1.0);
  const std::vector<const Job*> batch{&cpu_job, &mem_job};
  const auto entities = pack_jobs(batch);
  ASSERT_EQ(entities.size(), 1u);
  EXPECT_TRUE(entities[0].packed());
  EXPECT_EQ(entities[0].demand, ResourceVector(9.0, 9.0, 2.0));
}

TEST(PackingTest, SameDominantNeverPacked) {
  const Job a = make_job(1, 8.0, 1.0, 1.0);
  const Job b = make_job(2, 6.0, 1.0, 1.0);
  const std::vector<const Job*> batch{&a, &b};
  const auto entities = pack_jobs(batch);
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_FALSE(entities[0].packed());
  EXPECT_FALSE(entities[1].packed());
}

TEST(PackingTest, PicksHighestDeviationPartner) {
  // job1 (cpu) can pair with job2 (mem, small) or job3 (mem, large):
  // the larger complementary demand yields the larger DV.
  const Job cpu_job = make_job(1, 8.0, 1.0, 1.0);
  const Job small_mem = make_job(2, 1.0, 3.0, 1.0);
  const Job big_mem = make_job(3, 1.0, 9.0, 1.0);
  const std::vector<const Job*> batch{&cpu_job, &small_mem, &big_mem};
  const auto entities = pack_jobs(batch);
  ASSERT_EQ(entities.size(), 2u);
  ASSERT_TRUE(entities[0].packed());
  // cpu_job (index 0) pairs with big_mem (index 2).
  EXPECT_EQ(entities[0].members, (std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(entities[1].packed());
}

TEST(PackingTest, OddOneOutBecomesSingleton) {
  const Job a = make_job(1, 8.0, 1.0, 1.0);
  const Job b = make_job(2, 1.0, 8.0, 1.0);
  const Job c = make_job(3, 7.0, 1.0, 1.0);
  const std::vector<const Job*> batch{&a, &b, &c};
  const auto entities = pack_jobs(batch);
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_TRUE(entities[0].packed());
  EXPECT_FALSE(entities[1].packed());
  EXPECT_EQ(entities[1].members[0], 2u);
}

TEST(PackingTest, EveryJobInExactlyOneEntity) {
  std::vector<Job> jobs;
  for (int i = 0; i < 21; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i),
                            (i % 3 == 0) ? 8.0 : 1.0,
                            (i % 3 == 1) ? 8.0 : 1.0,
                            (i % 3 == 2) ? 8.0 : 1.0));
  }
  std::vector<const Job*> batch;
  for (const Job& j : jobs) batch.push_back(&j);
  const auto entities = pack_jobs(batch);
  std::vector<int> seen(batch.size(), 0);
  for (const auto& e : entities) {
    EXPECT_GE(e.members.size(), 1u);
    EXPECT_LE(e.members.size(), 2u);
    for (std::size_t m : e.members) ++seen[m];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(PackingTest, EntityDemandIsSumOfMembers) {
  const Job a = make_job(1, 8.0, 1.0, 2.0);
  const Job b = make_job(2, 1.0, 8.0, 3.0);
  const std::vector<const Job*> batch{&a, &b};
  const auto entities = pack_jobs(batch);
  ASSERT_TRUE(entities[0].packed());
  EXPECT_EQ(entities[0].demand, a.request + b.request);
}

TEST(PackingTest, EmptyBatch) {
  EXPECT_TRUE(pack_jobs({}).empty());
  EXPECT_TRUE(singleton_entities({}).empty());
}

TEST(PackingTest, SingletonEntitiesNeverPack) {
  const Job a = make_job(1, 8.0, 1.0, 1.0);
  const Job b = make_job(2, 1.0, 8.0, 1.0);
  const std::vector<const Job*> batch{&a, &b};
  const auto entities = singleton_entities(batch);
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_FALSE(entities[0].packed());
  EXPECT_EQ(entities[0].demand, a.request);
}

}  // namespace
}  // namespace corp::sched
