#include <gtest/gtest.h>

#include "sched/baseline_schedulers.hpp"
#include "sched/corp_scheduler.hpp"
#include "sched/scheduler.hpp"

namespace corp::sched {
namespace {

Job make_job(std::uint64_t id, double cpu, double mem, double sto) {
  Job job;
  job.id = id;
  job.duration_slots = 2;
  job.request = ResourceVector(cpu, mem, sto);
  job.usage.assign(2, ResourceVector(cpu / 2, mem / 2, sto / 2));
  return job;
}

struct Fixture {
  std::vector<VmView> views;
  util::Rng rng{99};

  SchedulerContext context() {
    SchedulerContext ctx;
    ctx.vms = views;
    ctx.max_vm_capacity = ResourceVector(8, 32, 180);
    ctx.rng = &rng;
    return ctx;
  }
};

Fixture fixture_with_unused() {
  Fixture f;
  // VM 0: big unlocked unused pool; VM 1: unallocated only.
  VmView v0;
  v0.vm_id = 0;
  v0.predicted_unused = ResourceVector(4, 16, 90);
  v0.unlocked = true;
  v0.unallocated = ResourceVector(0.5, 2, 10);
  VmView v1;
  v1.vm_id = 1;
  v1.unallocated = ResourceVector(8, 32, 180);
  f.views = {v0, v1};
  return f;
}

TEST(CorpSchedulerTest, PrefersOpportunisticPool) {
  Fixture f = fixture_with_unused();
  CorpScheduler scheduler;
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AllocationKind::kOpportunistic);
  EXPECT_EQ(decisions[0].vm_id, 0u);
  // Opportunistic carve is sized below the full request.
  EXPECT_LT(decisions[0].allocated.cpu(), job.request.cpu());
  EXPECT_LT(decisions[0].request_fraction, 1.0);
}

TEST(CorpSchedulerTest, FallsBackToFreshCommit) {
  Fixture f = fixture_with_unused();
  f.views[0].unlocked = false;  // pool locked
  CorpScheduler scheduler;
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AllocationKind::kReserved);
  EXPECT_EQ(decisions[0].vm_id, 1u);
  EXPECT_EQ(decisions[0].allocated, job.request);
}

TEST(CorpSchedulerTest, UnplaceableJobOmitted) {
  Fixture f = fixture_with_unused();
  CorpScheduler scheduler;
  const Job huge = make_job(1, 100.0, 100.0, 1000.0);
  const std::vector<const Job*> batch{&huge};
  const auto ctx = f.context();
  EXPECT_TRUE(scheduler.place(batch, ctx).empty());
}

TEST(CorpSchedulerTest, PacksComplementaryArrivals) {
  Fixture f = fixture_with_unused();
  CorpScheduler scheduler;
  const Job cpu_job = make_job(1, 2.0, 0.5, 5.0);
  const Job mem_job = make_job(2, 0.5, 8.0, 5.0);
  const std::vector<const Job*> batch{&cpu_job, &mem_job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].batch_indices.size(), 2u);
}

TEST(CorpSchedulerTest, PackingDisabledGivesSingletons) {
  Fixture f = fixture_with_unused();
  CorpSchedulerConfig config;
  config.enable_packing = false;
  CorpScheduler scheduler(config);
  const Job cpu_job = make_job(1, 2.0, 0.5, 5.0);
  const Job mem_job = make_job(2, 0.5, 8.0, 5.0);
  const std::vector<const Job*> batch{&cpu_job, &mem_job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  EXPECT_EQ(decisions.size(), 2u);
}

TEST(CorpSchedulerTest, OpportunisticDisabledAlwaysReserves) {
  Fixture f = fixture_with_unused();
  CorpSchedulerConfig config;
  config.enable_opportunistic = false;
  CorpScheduler scheduler(config);
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AllocationKind::kReserved);
}

TEST(CorpSchedulerTest, BatchDoesNotOversubscribeSnapshot) {
  // Two entities, each needing most of VM1's pool: the second must not
  // also land on VM1's opportunistic pool.
  Fixture f = fixture_with_unused();
  f.views[0].predicted_unused = ResourceVector(2.0, 8.0, 40.0);
  CorpScheduler scheduler;
  const Job a = make_job(1, 2.0, 2.0, 10.0);
  const Job b = make_job(2, 2.0, 2.0, 10.0);
  const std::vector<const Job*> batch{&a, &b};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  int opportunistic = 0;
  for (const auto& d : decisions) {
    if (d.kind == AllocationKind::kOpportunistic) ++opportunistic;
  }
  EXPECT_LE(opportunistic, 1);
}

TEST(RccrSchedulerTest, UsesOpportunisticPoolRandomly) {
  Fixture f = fixture_with_unused();
  RccrScheduler scheduler;
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AllocationKind::kOpportunistic);
  EXPECT_EQ(decisions[0].vm_id, 0u);
}

TEST(RccrSchedulerTest, NoPacking) {
  Fixture f = fixture_with_unused();
  RccrScheduler scheduler;
  const Job cpu_job = make_job(1, 2.0, 0.5, 5.0);
  const Job mem_job = make_job(2, 0.5, 8.0, 5.0);
  const std::vector<const Job*> batch{&cpu_job, &mem_job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  for (const auto& d : decisions) {
    EXPECT_EQ(d.batch_indices.size(), 1u);
  }
}

TEST(CloudScaleSchedulerTest, AllocatesBelowRequest) {
  Fixture f = fixture_with_unused();
  CloudScaleScheduler scheduler;
  scheduler.train({{0.5, 0.6, 0.5, 0.4, 0.55, 0.5}});
  const Job job = make_job(1, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AllocationKind::kReserved);
  EXPECT_LT(decisions[0].allocated.cpu(), job.request.cpu());
  EXPECT_GT(decisions[0].allocated.cpu(), 0.0);
}

TEST(CloudScaleSchedulerTest, ReprovisionTracksDemandHistory) {
  CloudScaleScheduler scheduler;
  // Train on a mid-utilization corpus.
  predict::SeriesCorpus corpus;
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) series.push_back(0.5 + 0.1 * ((i % 4) / 3.0));
  corpus.push_back(series);
  scheduler.train(corpus);

  const Job job = make_job(1, 2.0, 2.0, 2.0);
  DemandHistory high_demand;
  DemandHistory low_demand;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    high_demand[r].assign(24, 1.8);  // 90% of request
    low_demand[r].assign(24, 0.6);   // 30% of request
  }
  const ResourceVector high =
      scheduler.reprovision(job, high_demand, job.request);
  const ResourceVector low =
      scheduler.reprovision(job, low_demand, job.request);
  EXPECT_GT(high.cpu(), low.cpu());
}

TEST(CloudScaleSchedulerTest, ReprovisionClampedToRequestBand) {
  CloudScaleSchedulerConfig config;
  CloudScaleScheduler scheduler(config);
  scheduler.train({{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}});
  const Job job = make_job(1, 2.0, 2.0, 2.0);
  DemandHistory history;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    history[r].assign(24, 2.0);
  }
  const ResourceVector target =
      scheduler.reprovision(job, history, job.request);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    EXPECT_LE(target[r], job.request[r] * config.max_fraction + 1e-9);
    EXPECT_GE(target[r], job.request[r] * config.min_fraction - 1e-9);
  }
}

TEST(DraSchedulerTest, ShareClassesCycle) {
  DraScheduler scheduler;
  EXPECT_EQ(scheduler.share_class(make_job(0, 1, 1, 1)), 0u);
  EXPECT_EQ(scheduler.share_class(make_job(1, 1, 1, 1)), 1u);
  EXPECT_EQ(scheduler.share_class(make_job(2, 1, 1, 1)), 2u);
  EXPECT_EQ(scheduler.share_class(make_job(3, 1, 1, 1)), 0u);
}

TEST(DraSchedulerTest, LowShareSqueezed) {
  DraScheduler scheduler;
  Fixture f = fixture_with_unused();
  const Job high_share = make_job(0, 1.0, 1.0, 1.0);
  const Job low_share = make_job(2, 1.0, 1.0, 1.0);
  const std::vector<const Job*> batch{&high_share, &low_share};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_GT(decisions[0].allocated.cpu(), decisions[1].allocated.cpu());
  // Low share gets less than its request; high share at least its request.
  EXPECT_LT(decisions[1].allocated.cpu(), 1.0);
  EXPECT_GE(decisions[0].allocated.cpu(), 1.0);
}

TEST(DraSchedulerTest, NeverUsesOpportunisticPool) {
  Fixture f = fixture_with_unused();
  DraScheduler scheduler;
  const Job job = make_job(0, 1.0, 4.0, 10.0);
  const std::vector<const Job*> batch{&job};
  const auto ctx = f.context();
  const auto decisions = scheduler.place(batch, ctx);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AllocationKind::kReserved);
}

TEST(DraSchedulerTest, ReprovisionReturnsEntitlement) {
  DraScheduler scheduler;
  const Job job = make_job(2, 2.0, 2.0, 2.0);  // low share
  DemandHistory history;
  const ResourceVector target =
      scheduler.reprovision(job, history, job.request);
  EXPECT_LT(target.cpu(), job.request.cpu());
}

TEST(FactoryTest, BuildsEveryMethod) {
  util::Rng rng(1);
  for (Method m : predict::kAllMethods) {
    auto scheduler = make_scheduler(m, rng);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->method(), m);
  }
}

TEST(SchedulerBaseTest, DefaultReprovisionIsIdentity) {
  util::Rng rng(1);
  auto corp_scheduler = make_scheduler(Method::kCorp, rng);
  const Job job = make_job(1, 2.0, 2.0, 2.0);
  DemandHistory history;
  const ResourceVector current(1.5, 1.5, 1.5);
  EXPECT_EQ(corp_scheduler->reprovision(job, history, current), current);
}

}  // namespace
}  // namespace corp::sched
