// MetricRegistry semantics: counter/gauge/phase/histogram behaviour,
// quantile extraction on known distributions, concurrent updates through
// util::ThreadPool, the enabled/disabled gate, and the JSON/CSV export
// schema (docs/observability.md).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "util/thread_pool.hpp"

namespace corp::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(PhaseStatTest, AggregatesCallsTotalAndMax) {
  PhaseStat phase;
  phase.add(2.0);
  phase.add(5.0);
  phase.add(3.0);
  EXPECT_EQ(phase.calls(), 3u);
  EXPECT_DOUBLE_EQ(phase.total_ms(), 10.0);
  EXPECT_DOUBLE_EQ(phase.max_ms(), 5.0);
  phase.reset();
  EXPECT_EQ(phase.calls(), 0u);
  EXPECT_EQ(phase.total_ms(), 0.0);
  EXPECT_EQ(phase.max_ms(), 0.0);
}

TEST(HistogramTest, BucketsValuesByUpperBound) {
  Histogram hist({1.0, 2.0, 3.0, 4.0});
  // A value equal to a bound lands in that bound's bucket (le semantics);
  // anything past the last bound lands in the overflow bucket.
  hist.observe(0.5);
  hist.observe(2.0);
  hist.observe(2.5);
  hist.observe(9.0);
  const std::vector<std::uint64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 14.0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 9.0);
}

TEST(HistogramTest, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, QuantilesOnUniformDistribution) {
  // 1..100 over decade-of-10 buckets: the interpolated quantiles land on
  // the exact uniform-distribution values.
  Histogram hist({10, 20, 30, 40, 50, 60, 70, 80, 90});
  for (int v = 1; v <= 100; ++v) hist.observe(static_cast<double>(v));
  EXPECT_DOUBLE_EQ(hist.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.90), 90.0);
  // p99 falls in the overflow bucket, interpolated toward max() = 100.
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 100.0);
  // Monotone in q.
  EXPECT_LE(hist.quantile(0.25), hist.quantile(0.5));
  EXPECT_LE(hist.quantile(0.5), hist.quantile(0.75));
}

TEST(HistogramTest, QuantileClampsToObservedRange) {
  // All mass on one value: every quantile must report that value, not an
  // interpolation across the (much wider) bucket.
  Histogram hist({100.0});
  hist.observe(42.0);
  hist.observe(42.0);
  hist.observe(42.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(hist.min(), 42.0);
  EXPECT_DOUBLE_EQ(hist.max(), 42.0);
}

TEST(HistogramTest, EmptyReportsZeroes) {
  Histogram hist({1.0, 2.0});
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.quantile(0.5), 0.0);
}

TEST(HistogramTest, ResetClearsEverythingIncludingMinMax) {
  Histogram hist({1.0});
  hist.observe(0.25);
  hist.observe(7.0);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  // Min/max must re-seed from the next observation, not keep old extremes.
  hist.observe(3.0);
  EXPECT_DOUBLE_EQ(hist.min(), 3.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3.0);
}

TEST(RegistryTest, HandlesAreStableAndSurviveReset) {
  MetricRegistry reg;
  Counter& a = reg.counter("stable");
  a.add(5);
  Counter& b = reg.counter("stable");
  EXPECT_EQ(&a, &b);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add(1);
  EXPECT_EQ(reg.counter("stable").value(), 1u);
  // Reset keeps the names registered.
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("stable"));
  EXPECT_EQ(snap.counters.at("stable"), 0u);
}

TEST(RegistryTest, HistogramBoundsFixedOnFirstCreation) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {999.0});
  EXPECT_EQ(&h, &again);
  ASSERT_EQ(again.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(again.bounds()[1], 2.0);
}

TEST(RegistryTest, GatedHelpersAreNoOpsWhenDisabled) {
  MetricRegistry& reg = registry();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(false);
  obs::count("gate_test.counter", 3);
  obs::set_gauge("gate_test.gauge", 1.0);
  obs::observe("gate_test.hist", 1.0);
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_FALSE(snap.counters.count("gate_test.counter"));
  EXPECT_FALSE(snap.gauges.count("gate_test.gauge"));
  EXPECT_FALSE(snap.histograms.count("gate_test.hist"));

  reg.set_enabled(true);
  obs::count("gate_test.counter", 3);
  snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("gate_test.counter"));
  EXPECT_EQ(snap.counters.at("gate_test.counter"), 3u);
  reg.set_enabled(was_enabled);
}

TEST(ScopedTimerTest, RecordsOnlyWhenEnabled) {
  MetricRegistry reg;
  reg.set_enabled(false);
  { ScopedTimer t("phase_a", reg); }
  EXPECT_TRUE(reg.snapshot().phases.empty());

  reg.set_enabled(true);
  { ScopedTimer t("phase_a", reg); }
  { ScopedTimer t("phase_a", reg); }
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.phases.count("phase_a"));
  EXPECT_EQ(snap.phases.at("phase_a").calls, 2u);
  EXPECT_GE(snap.phases.at("phase_a").total_ms, 0.0);
  EXPECT_GE(snap.phases.at("phase_a").max_ms, 0.0);
}

TEST(RegistryTest, ConcurrentIncrementsFromThreadPool) {
  MetricRegistry reg;
  reg.set_enabled(true);
  constexpr std::size_t kTasks = 20000;
  // Hoisted handles, as the instrumented hot paths do.
  Counter& counter = reg.counter("parallel.counter");
  Histogram& hist = reg.histogram("parallel.hist", {0.25, 0.5, 0.75});
  PhaseStat& phase = reg.phase("parallel.phase");
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    counter.add(1);
    hist.observe(static_cast<double>(i % 100) / 100.0);
    phase.add(0.001);
  });
  EXPECT_EQ(counter.value(), kTasks);
  EXPECT_EQ(hist.count(), kTasks);
  EXPECT_EQ(phase.calls(), kTasks);
  EXPECT_NEAR(phase.total_ms(), kTasks * 0.001, 1e-6);

  // Snapshot invariants the CI validator also enforces: cumulative bucket
  // counts are monotone and end at count.
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot& h = snap.histograms.at("parallel.hist");
  ASSERT_EQ(h.cumulative.size(), h.bounds.size() + 1);
  std::uint64_t prev = 0;
  for (std::uint64_t c : h.cumulative) {
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(h.cumulative.back(), h.count);
}

TEST(ExportTest, MetricsJsonCarriesAllSections) {
  MetricRegistry reg;
  reg.set_enabled(true);
  reg.counter("c").add(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);
  { ScopedTimer t("p", reg); }
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_NE(json.find("\"counters\":{\"c\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":1.5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\":{\"h\":{\"count\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"phases\":{\"p\":{\"calls\":1"), std::string::npos)
      << json;
}

TEST(ExportTest, SnapshotJsonEnvelope) {
  MetricRegistry reg;
  reg.counter("c").add(1);
  const std::string json = snapshot_json(reg.snapshot(), "test-run");
  EXPECT_EQ(json.rfind("{\"schema_version\":1,\"run_id\":\"test-run\",", 0),
            0u)
      << json;
  EXPECT_EQ(json.back(), '}');
}

TEST(ExportTest, NonFiniteValuesSerializeAsNull) {
  MetricRegistry reg;
  reg.gauge("nan").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("inf").set(std::numeric_limits<double>::infinity());
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_NE(json.find("\"nan\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inf\":null"), std::string::npos) << json;
}

TEST(ExportTest, JsonEscapesMetricNames) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
}

TEST(ExportTest, CsvRowsPerScalarField) {
  MetricRegistry reg;
  reg.set_enabled(true);
  reg.counter("c").add(7);
  { ScopedTimer t("p", reg); }
  std::ostringstream out;
  write_csv(out, reg.snapshot(), "rid");
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("run_id,kind,name,field,value\n", 0), 0u) << csv;
  EXPECT_NE(csv.find("rid,counter,c,value,7"), std::string::npos) << csv;
  EXPECT_NE(csv.find("rid,phase,p,calls,1"), std::string::npos) << csv;
}

}  // namespace
}  // namespace corp::obs
