// Pins the obs determinism contract (src/obs/metrics.hpp): metric
// collection only observes — clocks and atomics — so running the same
// experiment point with metrics enabled and disabled must produce
// bit-identical results for every deterministic output field. Only the
// wall-clock latency fields may differ.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace corp::sim {
namespace {

ExperimentConfig reduced_experiment() {
  ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::PalmettoCluster();
  experiment.seed = 7;
  experiment.training_jobs = 60;
  experiment.training_horizon_slots = 120;
  return experiment;
}

PointResult run_with_metrics(bool metrics_on) {
  obs::registry().reset();
  obs::set_enabled(metrics_on);
  const PointResult result =
      run_point(reduced_experiment(), Method::kCorp, 100);
  obs::set_enabled(false);
  return result;
}

TEST(ObsDeterminismTest, MetricsOnOffProduceBitIdenticalResults) {
  const PointResult on = run_with_metrics(true);
  const PointResult off = run_with_metrics(false);

  // Simulation outputs, exact: any drift means instrumentation leaked
  // into simulation state or an RNG stream.
  EXPECT_EQ(on.sim.method, off.sim.method);
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    EXPECT_EQ(on.sim.mean_utilization[r], off.sim.mean_utilization[r]);
    EXPECT_EQ(on.sim.mean_wastage[r], off.sim.mean_wastage[r]);
  }
  EXPECT_EQ(on.sim.overall_utilization, off.sim.overall_utilization);
  EXPECT_EQ(on.sim.overall_wastage, off.sim.overall_wastage);
  EXPECT_EQ(on.sim.slo_violation_rate, off.sim.slo_violation_rate);
  EXPECT_EQ(on.sim.mean_stretch, off.sim.mean_stretch);
  EXPECT_EQ(on.sim.jobs_completed, off.sim.jobs_completed);
  EXPECT_EQ(on.sim.jobs_violated, off.sim.jobs_violated);
  EXPECT_EQ(on.sim.jobs_forced, off.sim.jobs_forced);
  EXPECT_EQ(on.sim.opportunistic_placements,
            off.sim.opportunistic_placements);
  EXPECT_EQ(on.sim.reserved_placements, off.sim.reserved_placements);
  EXPECT_EQ(on.sim.lease_promotions, off.sim.lease_promotions);
  EXPECT_EQ(on.sim.lease_preemptions, off.sim.lease_preemptions);
  EXPECT_EQ(on.sim.slots_simulated, off.sim.slots_simulated);
  // compute_latency_ms / total_latency_ms are wall-clock measurements and
  // legitimately differ run to run; they are deliberately not compared.

  // Prediction evaluation, exact.
  EXPECT_EQ(on.prediction.jobs_evaluated, off.prediction.jobs_evaluated);
  EXPECT_EQ(on.prediction.jobs_correct, off.prediction.jobs_correct);
  EXPECT_EQ(on.prediction.error_rate, off.prediction.error_rate);
  EXPECT_EQ(on.prediction.mean_error, off.prediction.mean_error);
  EXPECT_EQ(on.prediction.mean_abs_error, off.prediction.mean_abs_error);
}

TEST(ObsDeterminismTest, EnabledRunActuallyCollects) {
  obs::registry().reset();
  obs::set_enabled(true);
  run_point(reduced_experiment(), Method::kCorp, 100);
  obs::set_enabled(false);
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_TRUE(snap.phases.count("sim.run"));
  EXPECT_TRUE(snap.phases.count("dnn.fit"));
  EXPECT_TRUE(snap.phases.count("hmm.baum_welch"));
  EXPECT_TRUE(snap.phases.count("sched.place"));
  ASSERT_TRUE(snap.counters.count("sim.runs"));
  EXPECT_GE(snap.counters.at("sim.runs"), 1u);
}

}  // namespace
}  // namespace corp::sim
