#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace corp::fault {
namespace {

TEST(FaultConfigTest, DefaultIsInert) {
  const FaultConfig config;
  EXPECT_FALSE(config.any());
  const FaultInjector injector(config, 1, 16, 1000);
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.plan().transitions().empty());
}

TEST(FaultConfigTest, AnyTripsOnEachFaultClass) {
  FaultConfig mttf;
  mttf.vm_mttf_slots = 100.0;
  EXPECT_TRUE(mttf.any());
  FaultConfig gap;
  gap.telemetry_gap_rate = 0.1;
  EXPECT_TRUE(gap.any());
  FaultConfig straggler;
  straggler.straggler_rate = 0.1;
  EXPECT_TRUE(straggler.any());
  FaultConfig predictor;
  predictor.predictor_fault_rate = 0.1;
  EXPECT_TRUE(predictor.any());
}

TEST(ScaledFaultConfigTest, ZeroIntensityIsInert) {
  EXPECT_FALSE(scaled_fault_config(0.0).any());
  EXPECT_FALSE(scaled_fault_config(-1.0).any());
}

TEST(ScaledFaultConfigTest, IntensityScalesMonotonically) {
  const FaultConfig lo = scaled_fault_config(0.25);
  const FaultConfig hi = scaled_fault_config(1.0);
  EXPECT_TRUE(lo.any());
  EXPECT_TRUE(hi.any());
  EXPECT_GT(lo.vm_mttf_slots, hi.vm_mttf_slots);  // rarer crashes at low a
  EXPECT_LT(lo.telemetry_gap_rate, hi.telemetry_gap_rate);
  EXPECT_LT(lo.straggler_rate, hi.straggler_rate);
  EXPECT_LT(lo.predictor_fault_rate, hi.predictor_fault_rate);
}

TEST(FaultPlanTest, TransitionsSortedAndAlternating) {
  FaultConfig config;
  config.vm_mttf_slots = 40.0;
  config.vm_mttr_slots = 10.0;
  const FaultPlan plan(config, 99, 8, 2000);
  const auto& all = plan.transitions();
  ASSERT_FALSE(all.empty());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const VmTransition& a, const VmTransition& b) {
                               return a.slot < b.slot ||
                                      (a.slot == b.slot && a.vm_id < b.vm_id);
                             }));
  // Per VM the schedule alternates crash, recovery, crash, ...
  for (std::uint32_t v = 0; v < 8; ++v) {
    bool expect_up = false;
    std::int64_t prev_slot = -1;
    for (const auto& tr : all) {
      if (tr.vm_id != v) continue;
      EXPECT_EQ(tr.up, expect_up);
      EXPECT_GT(tr.slot, prev_slot);
      prev_slot = tr.slot;
      expect_up = !expect_up;
    }
  }
  EXPECT_GT(plan.crash_count(), 0u);
}

TEST(FaultPlanTest, DeterministicAndSeedSensitive) {
  FaultConfig config;
  config.vm_mttf_slots = 50.0;
  const FaultPlan a(config, 7, 4, 1000);
  const FaultPlan b(config, 7, 4, 1000);
  const FaultPlan c(config, 8, 4, 1000);
  ASSERT_EQ(a.transitions().size(), b.transitions().size());
  for (std::size_t i = 0; i < a.transitions().size(); ++i) {
    EXPECT_EQ(a.transitions()[i].slot, b.transitions()[i].slot);
    EXPECT_EQ(a.transitions()[i].vm_id, b.transitions()[i].vm_id);
    EXPECT_EQ(a.transitions()[i].up, b.transitions()[i].up);
  }
  // A different seed produces a different schedule (overwhelmingly).
  bool differs = a.transitions().size() != c.transitions().size();
  for (std::size_t i = 0; !differs && i < a.transitions().size(); ++i) {
    differs = a.transitions()[i].slot != c.transitions()[i].slot ||
              a.transitions()[i].vm_id != c.transitions()[i].vm_id;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, VmScheduleInvariantToClusterSize) {
  // VM k's schedule must not change when more VMs are added — each VM has
  // its own derived stream.
  FaultConfig config;
  config.vm_mttf_slots = 60.0;
  const FaultPlan small(config, 3, 2, 1500);
  const FaultPlan large(config, 3, 16, 1500);
  auto vm_schedule = [](const FaultPlan& plan, std::uint32_t vm) {
    std::vector<std::int64_t> slots;
    for (const auto& tr : plan.transitions()) {
      if (tr.vm_id == vm) slots.push_back(tr.slot * 2 + (tr.up ? 1 : 0));
    }
    return slots;
  };
  EXPECT_EQ(vm_schedule(small, 0), vm_schedule(large, 0));
  EXPECT_EQ(vm_schedule(small, 1), vm_schedule(large, 1));
}

TEST(FaultInjectorTest, TransitionsAtCursorWalksThePlan) {
  FaultConfig config;
  config.vm_mttf_slots = 30.0;
  FaultInjector injector(config, 5, 6, 800);
  std::size_t seen = 0;
  for (std::int64_t t = 0; t < 800; ++t) {
    for (const auto& tr : injector.transitions_at(t)) {
      EXPECT_EQ(tr.slot, t);
      ++seen;
    }
  }
  EXPECT_EQ(seen, injector.plan().transitions().size());
}

TEST(FaultInjectorTest, TelemetryGapsDeterministicAndBursty) {
  FaultConfig config;
  config.telemetry_gap_rate = 0.05;
  config.telemetry_gap_mean_slots = 4.0;
  const FaultInjector a(config, 11, 0, 0);
  const FaultInjector b(config, 11, 0, 0);
  std::size_t gaps = 0;
  for (std::uint64_t job = 0; job < 20; ++job) {
    for (std::int64_t t = 0; t < 200; ++t) {
      EXPECT_EQ(a.telemetry_gap(job, t), b.telemetry_gap(job, t));
      if (a.telemetry_gap(job, t)) ++gaps;
    }
  }
  // ~5% opening rate with mean length ~4: expect well above zero and well
  // below everything.
  EXPECT_GT(gaps, 100u);
  EXPECT_LT(gaps, 2000u);
}

TEST(FaultInjectorTest, GapQueriesAreOrderIndependent) {
  FaultConfig config;
  config.telemetry_gap_rate = 0.1;
  const FaultInjector injector(config, 21, 0, 0);
  std::vector<bool> forward, backward;
  for (std::int64_t t = 0; t < 100; ++t) {
    forward.push_back(injector.telemetry_gap(7, t));
  }
  for (std::int64_t t = 99; t >= 0; --t) {
    backward.push_back(injector.telemetry_gap(7, t));
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(FaultInjectorTest, StragglerRateApproximatelyHonored) {
  FaultConfig config;
  config.straggler_rate = 0.2;
  config.straggler_demand_factor = 1.5;
  const FaultInjector injector(config, 31, 0, 0);
  std::size_t stragglers = 0;
  for (std::uint64_t job = 0; job < 1000; ++job) {
    if (injector.is_straggler(job)) {
      ++stragglers;
      EXPECT_DOUBLE_EQ(injector.demand_multiplier(job), 1.5);
    } else {
      EXPECT_DOUBLE_EQ(injector.demand_multiplier(job), 1.0);
    }
  }
  EXPECT_GT(stragglers, 120u);
  EXPECT_LT(stragglers, 300u);
}

TEST(FaultInjectorTest, PredictorFaultsMixNanAndExplode) {
  FaultConfig config;
  config.predictor_fault_rate = 0.3;
  const FaultInjector injector(config, 41, 0, 0);
  std::size_t nan = 0, explode = 0, none = 0;
  for (std::uint64_t job = 0; job < 50; ++job) {
    for (std::int64_t t = 0; t < 50; ++t) {
      switch (injector.predictor_fault(job, t, 0)) {
        case PredictorFaultKind::kNone: ++none; break;
        case PredictorFaultKind::kNan: ++nan; break;
        case PredictorFaultKind::kExplode: ++explode; break;
      }
    }
  }
  EXPECT_GT(nan, 0u);
  EXPECT_GT(explode, 0u);
  EXPECT_GT(none, nan + explode);
}

TEST(FaultInjectorTest, RetryBackoffDoublesAndCaps) {
  FaultConfig config;
  config.retry_backoff_base_slots = 2;
  config.retry_backoff_cap_slots = 16;
  const FaultInjector injector(config, 1, 0, 0);
  EXPECT_EQ(injector.retry_backoff(1), 2);
  EXPECT_EQ(injector.retry_backoff(2), 4);
  EXPECT_EQ(injector.retry_backoff(3), 8);
  EXPECT_EQ(injector.retry_backoff(4), 16);
  EXPECT_EQ(injector.retry_backoff(10), 16);  // capped
}

TEST(FaultInjectorTest, InertInjectorAnswersNoToEverything) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.telemetry_gap(0, 0));
  EXPECT_FALSE(injector.is_straggler(0));
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(0), 1.0);
  EXPECT_EQ(injector.predictor_fault(0, 0, 0), PredictorFaultKind::kNone);
  EXPECT_TRUE(injector.transitions_at(0).empty());
}

}  // namespace
}  // namespace corp::fault
