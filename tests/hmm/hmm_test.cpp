#include "hmm/hmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::hmm {
namespace {

/// A crisp 2-state, 2-symbol model: state i emits symbol i with p=0.9 and
/// states are sticky (p=0.8 self-transition).
HmmParams crisp_params() {
  HmmParams p;
  p.transition = {{0.8, 0.2}, {0.2, 0.8}};
  p.emission = {{0.9, 0.1}, {0.1, 0.9}};
  p.initial = {0.5, 0.5};
  return p;
}

TEST(HmmParamsTest, ValidAcceptsStochastic) {
  EXPECT_TRUE(crisp_params().valid());
}

TEST(HmmParamsTest, ValidRejectsBadRows) {
  HmmParams p = crisp_params();
  p.transition[0] = {0.5, 0.6};
  EXPECT_FALSE(p.valid());
  p = crisp_params();
  p.emission[1] = {-0.1, 1.1};
  EXPECT_FALSE(p.valid());
  p = crisp_params();
  p.initial = {1.0};
  EXPECT_FALSE(p.valid());
}

TEST(DiscreteHmmTest, RandomInitIsValid) {
  util::Rng rng(3);
  DiscreteHmm hmm(3, 3, rng);
  EXPECT_TRUE(hmm.params().valid());
  EXPECT_EQ(hmm.num_states(), 3u);
  EXPECT_EQ(hmm.num_symbols(), 3u);
}

TEST(DiscreteHmmTest, ConstructionRejectsInvalid) {
  util::Rng rng(3);
  EXPECT_THROW(DiscreteHmm(0, 2, rng), std::invalid_argument);
  HmmParams bad = crisp_params();
  bad.initial = {0.9, 0.9};
  EXPECT_THROW(DiscreteHmm{bad}, std::invalid_argument);
}

TEST(DiscreteHmmTest, ForwardLikelihoodMatchesBruteForce) {
  // For a short sequence, sum P(O, Q) over all state paths by hand.
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{0, 1};
  double total = 0.0;
  const auto& p = hmm.params();
  for (std::size_t q0 = 0; q0 < 2; ++q0) {
    for (std::size_t q1 = 0; q1 < 2; ++q1) {
      total += p.initial[q0] * p.emission[q0][0] * p.transition[q0][q1] *
               p.emission[q1][1];
    }
  }
  EXPECT_NEAR(hmm.log_likelihood(obs), std::log(total), 1e-10);
}

TEST(DiscreteHmmTest, ForwardRejectsBadObservations) {
  const DiscreteHmm hmm(crisp_params());
  EXPECT_THROW(hmm.forward(std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(hmm.forward(std::vector<std::size_t>{5}),
               std::invalid_argument);
}

TEST(DiscreteHmmTest, PosteriorRowsSumToOne) {
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{0, 0, 1, 1, 0};
  const auto gamma = hmm.posterior_states(obs);
  ASSERT_EQ(gamma.size(), obs.size());
  for (const auto& row : gamma) {
    double sum = 0.0;
    for (double g : row) sum += g;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DiscreteHmmTest, PosteriorTracksEmittingState) {
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{0, 0, 0, 1, 1, 1};
  const auto gamma = hmm.posterior_states(obs);
  EXPECT_GT(gamma[1][0], 0.8);  // early slots -> state 0
  EXPECT_GT(gamma[4][1], 0.8);  // late slots -> state 1
}

TEST(DiscreteHmmTest, ViterbiDecodesCrispSequence) {
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{0, 0, 0, 1, 1, 1};
  const auto path = hmm.viterbi(obs);
  ASSERT_EQ(path.size(), obs.size());
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 0u);
  EXPECT_EQ(path[4], 1u);
  EXPECT_EQ(path[5], 1u);
}

TEST(DiscreteHmmTest, ViterbiHandlesSingleObservation) {
  const DiscreteHmm hmm(crisp_params());
  const auto path = hmm.viterbi(std::vector<std::size_t>{1});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(DiscreteHmmTest, BaumWelchIncreasesLikelihood) {
  util::Rng rng(7);
  // Generate observations from the crisp model, then train a random HMM.
  const DiscreteHmm truth(crisp_params());
  std::vector<std::size_t> obs;
  std::size_t state = 0;
  for (int t = 0; t < 400; ++t) {
    obs.push_back(rng.bernoulli(truth.params().emission[state][1]) ? 1 : 0);
    state = rng.bernoulli(truth.params().transition[state][1]) ? 1 : 0;
  }
  DiscreteHmm learner(2, 2, rng);
  const double before = learner.log_likelihood(obs);
  const BaumWelchReport report = learner.baum_welch(obs, 60, 1e-7);
  const double after = learner.log_likelihood(obs);
  EXPECT_GT(after, before);
  EXPECT_GT(report.iterations, 0u);
  EXPECT_TRUE(learner.params().valid(1e-6));
}

TEST(DiscreteHmmTest, BaumWelchMonotoneOverIterations) {
  util::Rng rng(9);
  std::vector<std::size_t> obs;
  for (int t = 0; t < 200; ++t) obs.push_back((t / 7) % 2);
  DiscreteHmm a(2, 2, rng);
  DiscreteHmm b = a;
  a.baum_welch(obs, 3, 0.0);
  b.baum_welch(obs, 10, 0.0);
  EXPECT_GE(b.log_likelihood(obs) + 1e-9, a.log_likelihood(obs));
}

TEST(DiscreteHmmTest, NextSymbolDistributionIsDistribution) {
  const DiscreteHmm hmm(crisp_params());
  const auto dist =
      hmm.next_symbol_distribution(std::vector<std::size_t>{0, 0, 1});
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DiscreteHmmTest, PredictsStickyNextSymbol) {
  // Sticky states + crisp emissions: after a run of 1s the next symbol is
  // most likely 1 (Eq. 17).
  const DiscreteHmm hmm(crisp_params());
  EXPECT_EQ(hmm.predict_next_symbol(std::vector<std::size_t>{1, 1, 1, 1}),
            1u);
  EXPECT_EQ(hmm.predict_next_symbol(std::vector<std::size_t>{0, 0, 0, 0}),
            0u);
}

TEST(DiscreteHmmTest, ScaledForwardStableOnLongSequences) {
  const DiscreteHmm hmm(crisp_params());
  std::vector<std::size_t> obs(5000, 0);
  const double ll = hmm.log_likelihood(obs);
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_LT(ll, 0.0);
}

TEST(DiscreteHmmTest, BackwardScaleMismatchThrows) {
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{0, 1};
  EXPECT_THROW(hmm.backward(obs, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(DiscreteHmmTest, BackwardSingleObservationBoundary) {
  // Index-width regression for the unsigned reverse loop
  // `for (std::size_t t = T - 1; t-- > 0;)` in backward(): at T == 1 the
  // body must run zero times. A signed/int rewrite of this arithmetic
  // (the class of bug the -Wconversion wall exists to catch) walks off
  // the front of beta instead. The single beta row equals the scale.
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{1};
  const ForwardResult fwd = hmm.forward(obs);
  const auto beta = hmm.backward(obs, fwd.scale);
  ASSERT_EQ(beta.size(), 1u);
  ASSERT_EQ(beta[0].size(), hmm.num_states());
  for (double b : beta[0]) EXPECT_DOUBLE_EQ(b, fwd.scale[0]);
}

TEST(DiscreteHmmTest, PosteriorSingleObservationSumsToOne) {
  // Companion boundary check one layer up: gamma at T == 1 is still a
  // distribution, exercising the same T-1 arithmetic through posterior().
  const DiscreteHmm hmm(crisp_params());
  const std::vector<std::size_t> obs{0};
  const auto gamma = hmm.posterior_states(obs);
  ASSERT_EQ(gamma.size(), 1u);
  double total = 0.0;
  for (double g : gamma[0]) total += g;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace corp::hmm
