#include "hmm/symbolizer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace corp::hmm {
namespace {

TEST(SymbolizerTest, FitLearnsStatistics) {
  FluctuationSymbolizer sym;
  sym.fit(std::vector<double>{0.0, 2.0, 4.0});
  EXPECT_TRUE(sym.fitted());
  EXPECT_DOUBLE_EQ(sym.min(), 0.0);
  EXPECT_DOUBLE_EQ(sym.mean(), 2.0);
  EXPECT_DOUBLE_EQ(sym.max(), 4.0);
}

TEST(SymbolizerTest, ThresholdsPerPaperFormula) {
  FluctuationSymbolizer sym;
  sym.fit(std::vector<double>{0.0, 2.0, 4.0});
  // t1 = min + (mean - min)/2 = 1; t2 = mean + (max - mean)/2 = 3.
  EXPECT_DOUBLE_EQ(sym.lower_threshold(), 1.0);
  EXPECT_DOUBLE_EQ(sym.upper_threshold(), 3.0);
}

TEST(SymbolizerTest, SymbolMapping) {
  FluctuationSymbolizer sym;
  sym.fit(std::vector<double>{0.0, 2.0, 4.0});
  // Small range -> valley; mid -> center; large -> peak (Sec. III-A1b).
  EXPECT_EQ(sym.symbolize_range(0.5), FluctuationSymbol::kValley);
  EXPECT_EQ(sym.symbolize_range(1.0), FluctuationSymbol::kValley);  // <= t1
  EXPECT_EQ(sym.symbolize_range(2.0), FluctuationSymbol::kCenter);
  EXPECT_EQ(sym.symbolize_range(3.0), FluctuationSymbol::kPeak);  // >= t2
  EXPECT_EQ(sym.symbolize_range(10.0), FluctuationSymbol::kPeak);
}

TEST(SymbolizerTest, ObservationSequenceFromSeries) {
  FluctuationSymbolizer sym;
  sym.fit(std::vector<double>{0.0, 2.0, 4.0});
  // Windows of 2: ranges = |diff| per pair.
  const std::vector<double> series{0.0, 0.5,   // range 0.5 -> valley
                                   0.0, 2.0,   // range 2.0 -> center
                                   0.0, 3.5};  // range 3.5 -> peak
  const auto obs = sym.observation_sequence(series, 2);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs[0], static_cast<std::size_t>(FluctuationSymbol::kValley));
  EXPECT_EQ(obs[1], static_cast<std::size_t>(FluctuationSymbol::kCenter));
  EXPECT_EQ(obs[2], static_cast<std::size_t>(FluctuationSymbol::kPeak));
}

TEST(SymbolizerTest, CorrectionMagnitudeIsConservativeMin) {
  FluctuationSymbolizer sym;
  // Skewed distribution: mean closer to min.
  sym.fit(std::vector<double>{0.0, 1.0, 1.0, 1.0, 5.0});
  // mean = 1.6; max - mean = 3.4; mean - min = 1.6 -> min() = 1.6.
  EXPECT_NEAR(sym.correction_magnitude(), 1.6, 1e-12);
}

TEST(SymbolizerTest, UnfittedThrows) {
  FluctuationSymbolizer sym;
  EXPECT_THROW(sym.lower_threshold(), std::logic_error);
  EXPECT_THROW(sym.symbolize_range(1.0), std::logic_error);
  EXPECT_THROW(sym.correction_magnitude(), std::logic_error);
}

TEST(SymbolizerTest, EmptyFitThrows) {
  FluctuationSymbolizer sym;
  EXPECT_THROW(sym.fit({}), std::invalid_argument);
}

TEST(SymbolizerTest, ConstantHistoryDegenerate) {
  FluctuationSymbolizer sym;
  sym.fit(std::vector<double>{3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(sym.correction_magnitude(), 0.0);
  // All thresholds collapse to 3; a zero range <= t1 -> valley.
  EXPECT_EQ(sym.symbolize_range(0.0), FluctuationSymbol::kValley);
}

TEST(SymbolizerTest, SymbolNames) {
  EXPECT_EQ(fluctuation_symbol_name(FluctuationSymbol::kPeak), "peak");
  EXPECT_EQ(fluctuation_symbol_name(FluctuationSymbol::kCenter), "center");
  EXPECT_EQ(fluctuation_symbol_name(FluctuationSymbol::kValley), "valley");
}

}  // namespace
}  // namespace corp::hmm
