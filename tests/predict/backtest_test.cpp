#include "predict/backtest.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::predict {
namespace {

SeriesCorpus corpus(std::uint64_t seed, std::size_t count = 4,
                    std::size_t length = 150) {
  util::Rng rng(seed);
  SeriesCorpus out;
  for (std::size_t s = 0; s < count; ++s) {
    std::vector<double> series;
    double level = 0.5;
    for (std::size_t i = 0; i < length; ++i) {
      level += 0.3 * (0.5 - level) + rng.normal(0.0, 0.04);
      series.push_back(std::clamp(level, 0.0, 1.0));
    }
    out.push_back(std::move(series));
  }
  return out;
}

TEST(BacktestTest, RejectsDegenerateConfig) {
  util::Rng rng(1);
  auto stack = make_stack(Method::kDra, StackConfig{}, rng);
  stack->train(corpus(2));
  BacktestConfig config;
  config.horizon = 0;
  EXPECT_THROW(backtest(*stack, corpus(3), config), std::invalid_argument);
  config.horizon = 6;
  config.stride = 0;
  EXPECT_THROW(backtest(*stack, corpus(3), config), std::invalid_argument);
}

TEST(BacktestTest, EmptyCorpusGivesZeroForecasts) {
  util::Rng rng(1);
  auto stack = make_stack(Method::kDra, StackConfig{}, rng);
  stack->train(corpus(2));
  const BacktestReport report = backtest(*stack, {});
  EXPECT_EQ(report.forecasts, 0u);
  EXPECT_DOUBLE_EQ(report.rmse, 0.0);
}

TEST(BacktestTest, ForecastCountMatchesOrigins) {
  util::Rng rng(1);
  auto stack = make_stack(Method::kDra, StackConfig{}, rng);
  stack->train(corpus(2));
  SeriesCorpus one = corpus(3, 1, 60);
  BacktestConfig config;
  config.warmup_slots = 12;
  config.stride = 6;
  config.horizon = 6;
  const BacktestReport report = backtest(*stack, one, config);
  // Origins: 12, 18, 24, ..., 54 -> 8 forecasts.
  EXPECT_EQ(report.forecasts, 8u);
}

TEST(BacktestTest, MeanPredictorNearUnbiasedOnStationarySeries) {
  util::Rng rng(5);
  auto stack = make_stack(Method::kDra, StackConfig{}, rng);
  stack->train(corpus(7));
  const BacktestReport report = backtest(*stack, corpus(11, 6, 300));
  EXPECT_GT(report.forecasts, 100u);
  EXPECT_NEAR(report.bias, 0.0, 0.03);
  EXPECT_NEAR(report.coverage, 0.5, 0.15);
}

TEST(BacktestTest, CorpStackIsConservative) {
  util::Rng rng(5);
  StackConfig config;
  config.confidence_level = 0.8;
  auto stack = make_stack(Method::kCorp, config, rng);
  const SeriesCorpus train = corpus(7);
  stack->train(train);
  const BacktestReport report = backtest(*stack, corpus(13, 4, 200));
  // The Eq. 19 lower bound puts most outcomes above the forecast.
  EXPECT_GT(report.coverage, 0.6);
  EXPECT_GT(report.bias, 0.0);
  EXPECT_GT(report.band_rate, 0.4);
}

TEST(BacktestTest, FrozenStackIgnoresOutcomes) {
  // With feed_outcomes = false the stack state (hence predictions) must
  // be identical across repeated backtests.
  util::Rng rng(9);
  auto stack = make_stack(Method::kRccr, StackConfig{}, rng);
  stack->train(corpus(7));
  BacktestConfig config;
  config.feed_outcomes = false;
  const SeriesCorpus eval = corpus(17, 3, 120);
  const BacktestReport a = backtest(*stack, eval, config);
  const BacktestReport b = backtest(*stack, eval, config);
  EXPECT_DOUBLE_EQ(a.rmse, b.rmse);
  EXPECT_DOUBLE_EQ(a.bias, b.bias);
}

TEST(BacktestTest, OnlineFeedbackChangesState) {
  util::Rng rng(9);
  auto stack = make_stack(Method::kRccr, StackConfig{}, rng);
  stack->train(corpus(7));
  const SeriesCorpus eval = corpus(19, 3, 120);
  const double gate_before = stack->gate_probability();
  BacktestConfig config;
  config.feed_outcomes = true;
  backtest(*stack, eval, config);
  // Not asserting direction — only that outcomes flowed into the tracker.
  EXPECT_NE(stack->gate_probability(), gate_before);
}

}  // namespace
}  // namespace corp::predict
