// Tests for the individual series predictors: DNN, ETS, PRESS/Markov and
// sliding mean.
#include <gtest/gtest.h>

#include <cmath>

#include "predict/dnn_predictor.hpp"
#include "predict/ets_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/mean_predictor.hpp"
#include "util/stats.hpp"

namespace corp::predict {
namespace {

SeriesCorpus sine_corpus(std::size_t series_count, std::size_t length) {
  SeriesCorpus corpus;
  for (std::size_t s = 0; s < series_count; ++s) {
    std::vector<double> series;
    for (std::size_t i = 0; i < length; ++i) {
      series.push_back(
          0.5 + 0.3 * std::sin(0.25 * static_cast<double>(i + s * 3)));
    }
    corpus.push_back(std::move(series));
  }
  return corpus;
}

SeriesCorpus noisy_corpus(std::size_t series_count, std::size_t length,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  SeriesCorpus corpus;
  for (std::size_t s = 0; s < series_count; ++s) {
    std::vector<double> series;
    double level = 0.5;
    for (std::size_t i = 0; i < length; ++i) {
      level += 0.3 * (0.5 - level) + rng.normal(0.0, 0.05);
      series.push_back(std::clamp(level, 0.0, 1.0));
    }
    corpus.push_back(std::move(series));
  }
  return corpus;
}


/// Query-form shorthand: every scalar call in these tests goes through the
/// PredictionQuery entry point (the deprecated span/horizon shim is gone).
double predict_at(SeriesPredictor& predictor, std::span<const double> history,
                  std::size_t horizon) {
  return predictor.predict(
      PredictionQuery{.entity = 0, .horizon = horizon, .history = history});
}

// ------------------------------------------------------------------ DNN --

TEST(DnnPredictorTest, RejectsBadConfig) {
  util::Rng rng(1);
  DnnPredictorConfig config;
  config.history_slots = 0;
  EXPECT_THROW(DnnPredictor(config, rng), std::invalid_argument);
}

TEST(DnnPredictorTest, PredictBeforeTrainThrows) {
  util::Rng rng(1);
  DnnPredictor dnn({}, rng);
  EXPECT_THROW(predict_at(dnn, std::vector<double>{1.0}, 6), std::logic_error);
}

TEST(DnnPredictorTest, EmptyCorpusThrows) {
  util::Rng rng(1);
  DnnPredictor dnn({}, rng);
  EXPECT_THROW(dnn.train({}), std::invalid_argument);
}

TEST(DnnPredictorTest, TooShortSeriesThrows) {
  util::Rng rng(1);
  DnnPredictor dnn({}, rng);
  SeriesCorpus corpus{{1.0, 2.0, 3.0}};
  EXPECT_THROW(dnn.train(corpus), std::invalid_argument);
}

TEST(DnnPredictorTest, LearnsSmoothSeries) {
  util::Rng rng(5);
  DnnPredictorConfig config;
  config.history_slots = 8;
  config.horizon_slots = 2;
  config.trainer.max_epochs = 30;
  DnnPredictor dnn(config, rng);
  const SeriesCorpus corpus = sine_corpus(4, 200);
  dnn.train(corpus);
  EXPECT_TRUE(dnn.trained());

  // Walk-forward accuracy on a fresh phase-shifted sine.
  std::vector<double> test;
  for (int i = 0; i < 100; ++i) {
    test.push_back(0.5 + 0.3 * std::sin(0.25 * i + 1.0));
  }
  double se = 0.0;
  int n = 0;
  for (std::size_t end = 8; end + 2 <= test.size(); ++end) {
    const std::span<const double> history(test.data(), end);
    const double pred = predict_at(dnn, history, 2);
    const double actual = 0.5 * (test[end] + test[end + 1]);
    se += (pred - actual) * (pred - actual);
    ++n;
  }
  EXPECT_LT(std::sqrt(se / n), 0.12);
}

TEST(DnnPredictorTest, HandlesShortHistories) {
  util::Rng rng(5);
  DnnPredictorConfig config;
  config.history_slots = 12;
  DnnPredictor dnn(config, rng);
  dnn.train(sine_corpus(2, 120));
  // Histories shorter than the input width must still produce finite,
  // in-range predictions (tiled padding).
  for (std::size_t len : {1u, 2u, 5u, 11u}) {
    std::vector<double> history(len, 0.6);
    const double pred = predict_at(dnn, history, 6);
    EXPECT_TRUE(std::isfinite(pred));
    EXPECT_GT(pred, -0.5);
    EXPECT_LT(pred, 1.5);
  }
}

TEST(DnnPredictorTest, AdaptsToLevelShift) {
  // Residual learning: a series sitting at a different level than the
  // training corpus should still be predicted near its own level.
  util::Rng rng(6);
  DnnPredictorConfig config;
  config.history_slots = 8;
  config.horizon_slots = 2;
  DnnPredictor dnn(config, rng);
  dnn.train(noisy_corpus(3, 200, 42));  // trained around level 0.5
  std::vector<double> high_level(30, 0.8);
  const double pred = predict_at(dnn, high_level, 2);
  EXPECT_NEAR(pred, 0.8, 0.15);
}

// ------------------------------------------------------------------ ETS --

TEST(EtsPredictorTest, ConstantSeriesForecastsConstant) {
  EtsPredictor ets;
  ets.train({{5.0, 5.0, 5.0, 5.0, 5.0, 5.0}});
  const std::vector<double> history(20, 5.0);
  EXPECT_NEAR(predict_at(ets, history, 3), 5.0, 1e-9);
}

TEST(EtsPredictorTest, TracksLevelChanges) {
  EtsPredictor ets;
  ets.train(noisy_corpus(3, 150, 7));
  std::vector<double> history(30, 0.2);
  for (int i = 0; i < 30; ++i) history.push_back(0.8);
  // After a long stretch at 0.8 the forecast should be near 0.8.
  EXPECT_NEAR(predict_at(ets, history, 1), 0.8, 0.15);
}

TEST(EtsPredictorTest, ShortHistories) {
  EtsPredictor ets;
  ets.train({{1.0, 2.0, 1.5, 1.8, 1.2, 1.6}});
  EXPECT_DOUBLE_EQ(predict_at(ets, {}, 3), 0.0);
  EXPECT_DOUBLE_EQ(predict_at(ets, std::vector<double>{4.2}, 3), 4.2);
}

TEST(EtsPredictorTest, GridSearchPicksBounds) {
  EtsPredictor ets;
  ets.train(sine_corpus(2, 100));
  EXPECT_GT(ets.alpha(), 0.0);
  EXPECT_LT(ets.alpha(), 1.0);
  EXPECT_GE(ets.beta(), 0.0);
  EXPECT_LT(ets.beta(), 1.0);
}

TEST(EtsPredictorTest, DampedTrendBounded) {
  // An upward-trending history must not explode over a long horizon.
  EtsPredictor ets;
  ets.train({{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}});
  std::vector<double> rising;
  for (int i = 0; i < 20; ++i) rising.push_back(0.05 * i);
  const double forecast = predict_at(ets, rising, 50);
  EXPECT_LT(forecast, 3.0);
}

// --------------------------------------------------------------- Markov --

TEST(MarkovPredictorTest, RejectsBadConfig) {
  MarkovPredictorConfig config;
  config.num_bins = 1;
  EXPECT_THROW(MarkovChainPredictor{config}, std::invalid_argument);
}

TEST(MarkovPredictorTest, PredictBeforeTrainThrows) {
  MarkovChainPredictor markov;
  EXPECT_THROW(predict_at(markov, std::vector<double>{1.0}, 1),
               std::logic_error);
}

TEST(MarkovPredictorTest, EmptyCorpusThrows) {
  MarkovChainPredictor markov;
  EXPECT_THROW(markov.train({}), std::invalid_argument);
}

TEST(MarkovPredictorTest, BinsPartitionRange) {
  MarkovPredictorConfig config;
  config.num_bins = 4;
  MarkovChainPredictor markov(config);
  markov.train({{0.0, 1.0}});
  EXPECT_EQ(markov.bin_of(0.0), 0u);
  EXPECT_EQ(markov.bin_of(1.0), 3u);
  EXPECT_EQ(markov.bin_of(0.3), 1u);
  EXPECT_EQ(markov.bin_of(-5.0), 0u);   // clamped
  EXPECT_EQ(markov.bin_of(99.0), 3u);   // clamped
  EXPECT_NEAR(markov.bin_center(0), 0.125, 1e-12);
}

TEST(MarkovPredictorTest, DetectsPeriodicSignature) {
  // Strongly periodic series: the signature path should engage.
  std::vector<double> periodic;
  for (int i = 0; i < 300; ++i) {
    periodic.push_back(0.5 + 0.4 * std::sin(2.0 * M_PI * i / 12.0));
  }
  MarkovChainPredictor markov;
  markov.train({periodic});
  EXPECT_EQ(markov.signature_period(), 12u);
  // Signature replay: forecast ~ the value one period back.
  const double pred = predict_at(markov, periodic, 12);
  EXPECT_NEAR(pred, periodic.back(), 0.1);
}

TEST(MarkovPredictorTest, NoSignatureOnNoise) {
  MarkovChainPredictor markov;
  markov.train(noisy_corpus(3, 200, 19));
  EXPECT_EQ(markov.signature_period(), 0u);
}

TEST(MarkovPredictorTest, MultiStepRegressesTowardMean) {
  MarkovChainPredictor markov;
  markov.train(noisy_corpus(3, 300, 23));
  std::vector<double> low_history(10, 0.1);
  const double near = predict_at(markov, low_history, 1);
  const double far = predict_at(markov, low_history, 50);
  // Far forecasts converge toward the stationary mean (~0.5), closer
  // forecasts stay near the recent level — the weakening correlation the
  // paper describes.
  EXPECT_LT(near, far);
  EXPECT_NEAR(far, 0.5, 0.15);
}

TEST(MarkovPredictorTest, EmptyHistoryUsesMiddleBin) {
  MarkovChainPredictor markov;
  markov.train({{0.0, 1.0, 0.5, 0.2, 0.8}});
  const double pred = predict_at(markov, {}, 3);
  EXPECT_GT(pred, 0.0);
  EXPECT_LT(pred, 1.0);
}

// ----------------------------------------------------------------- Mean --

TEST(MeanPredictorTest, WindowedMean) {
  MeanPredictorConfig config;
  config.window = 2;
  SlidingMeanPredictor mean(config);
  mean.train({{1.0}});
  const std::vector<double> history{10.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(predict_at(mean, history, 6), 2.0);
}

TEST(MeanPredictorTest, WholeHistoryWhenWindowZero) {
  MeanPredictorConfig config;
  config.window = 0;
  SlidingMeanPredictor mean(config);
  mean.train({{1.0}});
  const std::vector<double> history{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(predict_at(mean, history, 6), 2.0);
}

TEST(MeanPredictorTest, EmptyHistoryFallsBackToCorpusMean) {
  SlidingMeanPredictor mean;
  mean.train({{2.0, 4.0}, {6.0}});
  EXPECT_DOUBLE_EQ(predict_at(mean, {}, 6), 4.0);
}

TEST(MeanPredictorTest, EmptyCorpusGivesZeroFallback) {
  SlidingMeanPredictor mean;
  mean.train({});
  EXPECT_DOUBLE_EQ(predict_at(mean, {}, 6), 0.0);
}

}  // namespace
}  // namespace corp::predict
