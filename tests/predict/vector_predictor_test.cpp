#include "predict/vector_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::predict {
namespace {

VectorCorpus small_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  VectorCorpus corpus;
  for (int s = 0; s < 3; ++s) {
    std::vector<ResourceVector> series;
    for (int i = 0; i < 150; ++i) {
      const double u = 0.5 + 0.2 * std::sin(0.3 * i) +
                       rng.normal(0.0, 0.03);
      series.push_back(ResourceVector(u, u * 0.9, u * 1.1));
    }
    corpus.add_series(series);
  }
  return corpus;
}

TEST(VectorCorpusTest, AddSeriesSplitsPerType) {
  VectorCorpus corpus;
  std::vector<ResourceVector> series{ResourceVector(1, 2, 3),
                                     ResourceVector(4, 5, 6)};
  corpus.add_series(series);
  EXPECT_FALSE(corpus.empty());
  ASSERT_EQ(corpus.per_type[0].size(), 1u);
  EXPECT_EQ(corpus.per_type[0][0], (std::vector<double>{1, 4}));
  EXPECT_EQ(corpus.per_type[2][0], (std::vector<double>{3, 6}));
}

TEST(VectorCorpusTest, EmptyDetection) {
  VectorCorpus corpus;
  EXPECT_TRUE(corpus.empty());
}

TEST(VectorPredictorTest, PredictsPerType) {
  util::Rng rng(3);
  StackConfig config;
  VectorPredictor predictor(Method::kDra, config, rng);
  predictor.train(small_corpus(5));

  std::array<std::vector<double>, kNumResources> history;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    history[r].assign(12, 0.5 * (1.0 + 0.1 * static_cast<double>(r)));
  }
  const ResourceVector pred = predictor.predict(history);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    EXPECT_TRUE(std::isfinite(pred[r]));
    EXPECT_GE(pred[r], 0.0);
  }
  // The sliding mean tracks each type's own level.
  EXPECT_NEAR(pred[0], 0.5, 0.05);
  EXPECT_NEAR(pred[2], 0.6, 0.06);
}

TEST(VectorPredictorTest, MethodAccessor) {
  util::Rng rng(3);
  VectorPredictor predictor(Method::kRccr, StackConfig{}, rng);
  EXPECT_EQ(predictor.method(), Method::kRccr);
  EXPECT_EQ(predictor.stack(0).name(), "rccr");
}

TEST(VectorPredictorTest, UnlockedRequiresAllStacks) {
  util::Rng rng(7);
  StackConfig config;
  config.probability_threshold = 0.0;  // each stack opens once seeded
  VectorPredictor predictor(Method::kRccr, config, rng);
  predictor.train(small_corpus(7));
  EXPECT_TRUE(predictor.unlocked());
}

TEST(VectorPredictorTest, DraNeverUnlocked) {
  util::Rng rng(7);
  StackConfig config;
  config.probability_threshold = 0.0;
  VectorPredictor predictor(Method::kDra, config, rng);
  predictor.train(small_corpus(7));
  EXPECT_FALSE(predictor.unlocked());
}

TEST(VectorPredictorTest, RecordOutcomeFeedsAllStacks) {
  util::Rng rng(9);
  VectorPredictor predictor(Method::kDra, StackConfig{}, rng);
  predictor.train(small_corpus(9));
  predictor.record_outcome(ResourceVector(0.5, 0.5, 0.5),
                           ResourceVector(0.4, 0.4, 0.4));
  SUCCEED();
}

}  // namespace
}  // namespace corp::predict
