#include "predict/health_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace corp::predict {
namespace {

HealthConfig small_config() {
  HealthConfig config;
  config.fault_window = 8;
  config.demote_faults = 3;
  config.promote_healthy = 6;
  return config;
}

TEST(HealthMonitorTest, HealthyForecastsKeepPrimary) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(monitor.observe(0.5));
  }
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.faults_observed(), 0u);
  EXPECT_EQ(monitor.demotions(), 0u);
}

TEST(HealthMonitorTest, HealthyClassification) {
  const PredictorHealthMonitor monitor;
  EXPECT_TRUE(monitor.healthy(0.0));
  EXPECT_TRUE(monitor.healthy(1.0));
  EXPECT_TRUE(monitor.healthy(-0.1));
  EXPECT_FALSE(monitor.healthy(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(monitor.healthy(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(monitor.healthy(1e9));  // past the explosion threshold
}

TEST(HealthMonitorTest, AccumulatedFaultsDemote) {
  PredictorHealthMonitor monitor(small_config());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(monitor.observe(nan));
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  monitor.observe(nan);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  monitor.observe(nan);  // third fault in window of 8 -> demote
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  EXPECT_EQ(monitor.demotions(), 1u);
}

TEST(HealthMonitorTest, RepeatedFaultsReachReservedOnlyAndStay) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 100; ++i) monitor.observe(1e12);
  EXPECT_EQ(monitor.tier(), DegradationTier::kReservedOnly);
  // No rung below reserved-only.
  monitor.observe(1e12);
  EXPECT_EQ(monitor.tier(), DegradationTier::kReservedOnly);
  EXPECT_GE(monitor.demotions(), 2u);
}

TEST(HealthMonitorTest, PromotionRequiresHealthyStreak) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // Five healthy observations: streak of 6 not yet reached.
  for (int i = 0; i < 5; ++i) monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.promotions(), 1u);
}

TEST(HealthMonitorTest, FaultResetsHealthyStreakHysteresis) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // A flapping predictor: 5 healthy then a fault, repeatedly. The streak
  // never reaches 6, so the monitor never promotes.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) monitor.observe(0.4);
    monitor.observe(std::numeric_limits<double>::quiet_NaN());
  }
  EXPECT_NE(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.promotions(), 0u);
}

TEST(HealthMonitorTest, ResetRestoresPristineState) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 50; ++i) monitor.observe(1e12);
  monitor.reset();
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.faults_observed(), 0u);
  EXPECT_EQ(monitor.demotions(), 0u);
  EXPECT_EQ(monitor.promotions(), 0u);
}

TEST(HealthMonitorTest, ExactDemoteThresholdBoundary) {
  // The demotion comparison is >=: demote_faults - 1 faults in the window
  // is safe no matter how often the pattern repeats, provided earlier
  // faults roll out of the window before the next one lands.
  PredictorHealthMonitor monitor(small_config());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int round = 0; round < 20; ++round) {
    monitor.observe(nan);
    monitor.observe(nan);  // 2 faults < demote_faults = 3
    // Eight healthy observations: both faults leave the window of 8.
    for (int i = 0; i < 8; ++i) monitor.observe(0.4);
    ASSERT_EQ(monitor.tier(), DegradationTier::kPrimary) << round;
  }
  EXPECT_EQ(monitor.demotions(), 0u);
  // One fault short of re-filling the window to the threshold...
  monitor.observe(nan);
  monitor.observe(nan);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  // ...and the exact third fault demotes: the boundary is inclusive.
  monitor.observe(nan);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  EXPECT_EQ(monitor.demotions(), 1u);
}

TEST(HealthMonitorTest, ExactPromoteThresholdBoundary) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // promote_healthy - 1 healthy observations: still one short.
  for (int i = 0; i < 5; ++i) monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  EXPECT_EQ(monitor.promotions(), 0u);
  // The exact promote_healthy-th healthy observation re-enters primary.
  monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.promotions(), 1u);
}

TEST(HealthMonitorTest, OscillationIsDamped) {
  // A predictor that alternates short fault bursts with sub-streak
  // recoveries must neither promote nor demote further: demotion cleared
  // the window evidence, the bursts stay below demote_faults, and the
  // recoveries stay below promote_healthy. The ladder holds still
  // instead of flapping resources open and shut.
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // Period-6 flapping: five healthy then a fault. The healthy streak
  // peaks at 5 < promote_healthy = 6, and the window of 8 never holds
  // more than two faults (they land six observations apart) so it never
  // reaches demote_faults = 3 either.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) monitor.observe(0.4);
    monitor.observe(nan);
    ASSERT_EQ(monitor.tier(), DegradationTier::kFallback) << round;
  }
  EXPECT_EQ(monitor.demotions(), 1u);
  EXPECT_EQ(monitor.promotions(), 0u);
}

TEST(HealthMonitorTest, FullRecoveryFromReservedOnly) {
  // Reserved-only back to primary is two rungs: each costs a full
  // promote_healthy streak (promotion resets the streak, so the climbs
  // cannot share evidence).
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 6; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kReservedOnly);
  for (int i = 0; i < 6; ++i) monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  // One observation short of the second climb.
  for (int i = 0; i < 5; ++i) monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.promotions(), 2u);
  // Recovered state is fully functional: the demote path works again.
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
}

TEST(HealthMonitorTest, WindowFaultFractionTracksWindow) {
  PredictorHealthMonitor monitor(small_config());
  EXPECT_EQ(monitor.window_fault_fraction(), 0.0);
  monitor.observe(0.4);
  EXPECT_EQ(monitor.window_fault_fraction(), 0.0);
  monitor.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(monitor.window_fault_fraction(), 0.5);  // 1 fault / 2 seen
  for (int i = 0; i < 6; ++i) monitor.observe(0.4);
  EXPECT_EQ(monitor.window_fault_fraction(), 1.0 / 8.0);
  // The fault sits at the second slot of the full window, so it takes
  // two more observations to roll out.
  monitor.observe(0.4);
  EXPECT_EQ(monitor.window_fault_fraction(), 1.0 / 8.0);
  monitor.observe(0.4);
  EXPECT_EQ(monitor.window_fault_fraction(), 0.0);
}

TEST(HealthMonitorTest, DemotionClearsFaultFractionEvidence) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // Demotion consumed the window: the continuous signal restarts at 0
  // so the next rung is judged on fresh evidence only.
  EXPECT_EQ(monitor.window_fault_fraction(), 0.0);
}

TEST(HealthMonitorTest, TierNames) {
  EXPECT_STREQ(tier_name(DegradationTier::kPrimary), "primary");
  EXPECT_STREQ(tier_name(DegradationTier::kFallback), "fallback");
  EXPECT_STREQ(tier_name(DegradationTier::kReservedOnly), "reserved-only");
}

}  // namespace
}  // namespace corp::predict
