#include "predict/health_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace corp::predict {
namespace {

HealthConfig small_config() {
  HealthConfig config;
  config.fault_window = 8;
  config.demote_faults = 3;
  config.promote_healthy = 6;
  return config;
}

TEST(HealthMonitorTest, HealthyForecastsKeepPrimary) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(monitor.observe(0.5));
  }
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.faults_observed(), 0u);
  EXPECT_EQ(monitor.demotions(), 0u);
}

TEST(HealthMonitorTest, HealthyClassification) {
  const PredictorHealthMonitor monitor;
  EXPECT_TRUE(monitor.healthy(0.0));
  EXPECT_TRUE(monitor.healthy(1.0));
  EXPECT_TRUE(monitor.healthy(-0.1));
  EXPECT_FALSE(monitor.healthy(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(monitor.healthy(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(monitor.healthy(1e9));  // past the explosion threshold
}

TEST(HealthMonitorTest, AccumulatedFaultsDemote) {
  PredictorHealthMonitor monitor(small_config());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(monitor.observe(nan));
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  monitor.observe(nan);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  monitor.observe(nan);  // third fault in window of 8 -> demote
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  EXPECT_EQ(monitor.demotions(), 1u);
}

TEST(HealthMonitorTest, RepeatedFaultsReachReservedOnlyAndStay) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 100; ++i) monitor.observe(1e12);
  EXPECT_EQ(monitor.tier(), DegradationTier::kReservedOnly);
  // No rung below reserved-only.
  monitor.observe(1e12);
  EXPECT_EQ(monitor.tier(), DegradationTier::kReservedOnly);
  EXPECT_GE(monitor.demotions(), 2u);
}

TEST(HealthMonitorTest, PromotionRequiresHealthyStreak) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // Five healthy observations: streak of 6 not yet reached.
  for (int i = 0; i < 5; ++i) monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kFallback);
  monitor.observe(0.4);
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.promotions(), 1u);
}

TEST(HealthMonitorTest, FaultResetsHealthyStreakHysteresis) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 3; ++i) monitor.observe(1e12);
  ASSERT_EQ(monitor.tier(), DegradationTier::kFallback);
  // A flapping predictor: 5 healthy then a fault, repeatedly. The streak
  // never reaches 6, so the monitor never promotes.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) monitor.observe(0.4);
    monitor.observe(std::numeric_limits<double>::quiet_NaN());
  }
  EXPECT_NE(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.promotions(), 0u);
}

TEST(HealthMonitorTest, ResetRestoresPristineState) {
  PredictorHealthMonitor monitor(small_config());
  for (int i = 0; i < 50; ++i) monitor.observe(1e12);
  monitor.reset();
  EXPECT_EQ(monitor.tier(), DegradationTier::kPrimary);
  EXPECT_EQ(monitor.faults_observed(), 0u);
  EXPECT_EQ(monitor.demotions(), 0u);
  EXPECT_EQ(monitor.promotions(), 0u);
}

TEST(HealthMonitorTest, TierNames) {
  EXPECT_STREQ(tier_name(DegradationTier::kPrimary), "primary");
  EXPECT_STREQ(tier_name(DegradationTier::kFallback), "fallback");
  EXPECT_STREQ(tier_name(DegradationTier::kReservedOnly), "reserved-only");
}

}  // namespace
}  // namespace corp::predict
