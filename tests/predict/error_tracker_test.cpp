#include "predict/error_tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::predict {
namespace {

TEST(ErrorTrackerTest, EmptyNeverUnlocks) {
  PredictionErrorTracker tracker;
  EXPECT_EQ(tracker.count(), 0u);
  EXPECT_DOUBLE_EQ(tracker.probability_within(1.0), 0.0);
  EXPECT_FALSE(tracker.unlocked(1.0, 0.01));
}

TEST(ErrorTrackerTest, RecordsDeltaAsActualMinusPredicted) {
  PredictionErrorTracker tracker;
  tracker.record(5.0, 3.0);  // delta = +2
  EXPECT_EQ(tracker.count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.mean(), 2.0);
}

TEST(ErrorTrackerTest, ProbabilityWithinCountsHalfOpenInterval) {
  PredictionErrorTracker tracker;
  tracker.record(1.0, 1.0);   // delta = 0 -> within [0, eps)
  tracker.record(1.5, 1.0);   // delta = 0.5 -> within
  tracker.record(3.0, 1.0);   // delta = 2 -> outside
  tracker.record(0.0, 1.0);   // delta = -1 -> outside (negative)
  EXPECT_DOUBLE_EQ(tracker.probability_within(1.0), 0.5);
}

TEST(ErrorTrackerTest, EpsilonBoundaryIsExclusive) {
  PredictionErrorTracker tracker;
  tracker.record(2.0, 1.0);  // delta = 1.0
  EXPECT_DOUBLE_EQ(tracker.probability_within(1.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.probability_within(1.0 + 1e-9), 1.0);
}

TEST(ErrorTrackerTest, UnlockedImplementsEq21) {
  PredictionErrorTracker tracker;
  for (int i = 0; i < 95; ++i) tracker.record(1.1, 1.0);  // within
  for (int i = 0; i < 5; ++i) tracker.record(9.0, 1.0);   // outside
  EXPECT_TRUE(tracker.unlocked(0.5, 0.95));
  EXPECT_FALSE(tracker.unlocked(0.5, 0.96));
}

TEST(ErrorTrackerTest, StdDevMatchesSample) {
  PredictionErrorTracker tracker;
  tracker.record(2.0, 0.0);
  tracker.record(4.0, 0.0);
  // deltas {2, 4}: sample sd = sqrt(2).
  EXPECT_NEAR(tracker.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(ErrorTrackerTest, StdDevZeroWithFewSamples) {
  PredictionErrorTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.stddev(), 0.0);
  tracker.record(1.0, 0.0);
  EXPECT_DOUBLE_EQ(tracker.stddev(), 0.0);
}

TEST(ErrorTrackerTest, CapacityEvictsOldest) {
  PredictionErrorTracker tracker(3);
  tracker.record(10.0, 0.0);  // will be evicted
  tracker.record(1.0, 0.0);
  tracker.record(1.0, 0.0);
  tracker.record(1.0, 0.0);
  EXPECT_EQ(tracker.count(), 3u);
  EXPECT_DOUBLE_EQ(tracker.mean(), 1.0);
}

TEST(ErrorTrackerTest, AllZeroErrorsArePerfectPredictions) {
  // delta == 0 everywhere: zero bias, zero spread, and every sample sits
  // at the closed end of [0, eps), so any positive epsilon unlocks fully.
  PredictionErrorTracker tracker;
  for (int i = 0; i < 16; ++i) tracker.record(2.5, 2.5);
  EXPECT_EQ(tracker.count(), 16u);
  EXPECT_DOUBLE_EQ(tracker.mean(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.probability_within(1e-12), 1.0);
  EXPECT_TRUE(tracker.unlocked(1e-12, 1.0));
  // epsilon == 0 makes [0, 0) empty: nothing is within, nothing unlocks.
  EXPECT_DOUBLE_EQ(tracker.probability_within(0.0), 0.0);
  EXPECT_FALSE(tracker.unlocked(0.0, 0.5));
}

TEST(ErrorTrackerTest, GateIsInclusiveAtExactThreshold) {
  // Eq. 21 boundary: Pr == P_th exactly. 3 of 4 samples land in [0, eps),
  // so Pr is exactly 0.75 — the >= gate must unlock at p_threshold = 0.75
  // and stay locked for anything strictly above it.
  PredictionErrorTracker tracker;
  tracker.record(1.0, 1.0);   // delta = 0 -> within
  tracker.record(1.25, 1.0);  // delta = 0.25 -> within
  tracker.record(1.5, 1.0);   // delta = 0.5 -> within
  tracker.record(5.0, 1.0);   // delta = 4 -> outside
  ASSERT_DOUBLE_EQ(tracker.probability_within(1.0), 0.75);
  EXPECT_TRUE(tracker.unlocked(1.0, 0.75));
  EXPECT_FALSE(tracker.unlocked(1.0, 0.75 + 1e-12));
  // Degenerate thresholds: P_th = 0 always unlocks once samples exist;
  // P_th = 1 requires every sample within.
  EXPECT_TRUE(tracker.unlocked(1.0, 0.0));
  EXPECT_FALSE(tracker.unlocked(1.0, 1.0));
}

TEST(ErrorTrackerTest, ResetClears) {
  PredictionErrorTracker tracker;
  tracker.record(1.0, 0.0);
  tracker.reset();
  EXPECT_EQ(tracker.count(), 0u);
  EXPECT_FALSE(tracker.unlocked(10.0, 0.0001));
}

}  // namespace
}  // namespace corp::predict
