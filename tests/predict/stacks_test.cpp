#include "predict/stacks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "predict/stack_builder.hpp"

namespace corp::predict {
namespace {

SeriesCorpus training_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  SeriesCorpus corpus;
  for (int s = 0; s < 4; ++s) {
    std::vector<double> series;
    double level = 0.45;
    for (int i = 0; i < 150; ++i) {
      level += 0.3 * (0.45 - level) + rng.normal(0.0, 0.04);
      series.push_back(std::clamp(level + 0.1 * std::sin(0.4 * i), 0.05, 1.0));
    }
    corpus.push_back(std::move(series));
  }
  return corpus;
}

TEST(MethodNameTest, AllMethodsNamed) {
  EXPECT_EQ(method_name(Method::kCorp), "CORP");
  EXPECT_EQ(method_name(Method::kRccr), "RCCR");
  EXPECT_EQ(method_name(Method::kCloudScale), "CloudScale");
  EXPECT_EQ(method_name(Method::kDra), "DRA");
}

class StackFactoryTest : public ::testing::TestWithParam<Method> {};

TEST_P(StackFactoryTest, TrainsAndPredictsFinite) {
  util::Rng rng(11);
  StackConfig config;
  auto stack = make_stack(GetParam(), config, rng);
  ASSERT_NE(stack, nullptr);
  stack->train(training_corpus(3));
  const std::vector<double> history(24, 0.5);
  const double pred = stack->predict(history);
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_GE(pred, 0.0);  // predictions are clamped non-negative
}

TEST_P(StackFactoryTest, RecordOutcomeDoesNotThrow) {
  util::Rng rng(11);
  auto stack = make_stack(GetParam(), StackConfig{}, rng);
  stack->train(training_corpus(3));
  stack->record_outcome(0.5, 0.4);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, StackFactoryTest,
                         ::testing::Values(Method::kCorp, Method::kRccr,
                                           Method::kCloudScale,
                                           Method::kDra));

TEST(CorpStackTest, ConfidenceBoundLowersPrediction) {
  util::Rng rng(13);
  CorpStack::Options with_bound;
  with_bound.stack.confidence_level = 0.9;
  with_bound.dnn.trainer.max_epochs = 10;
  CorpStack::Options without_bound = with_bound;
  without_bound.enable_confidence_bound = false;

  util::Rng rng_a(13), rng_b(13);
  CorpStack bounded(with_bound, rng_a);
  CorpStack unbounded(without_bound, rng_b);
  const SeriesCorpus corpus = training_corpus(5);
  bounded.train(corpus);
  unbounded.train(corpus);

  const std::vector<double> history(24, 0.5);
  // Eq. 19: the bounded stack predicts less or equal (sigma >= 0).
  EXPECT_LE(bounded.predict(history), unbounded.predict(history) + 1e-9);
}

TEST(CorpStackTest, HigherConfidenceMoreConservative) {
  const SeriesCorpus corpus = training_corpus(7);
  auto make = [&](double confidence) {
    util::Rng rng(17);
    CorpStack::Options options;
    options.stack.confidence_level = confidence;
    options.dnn.trainer.max_epochs = 10;
    auto stack = std::make_unique<CorpStack>(options, rng);
    stack->train(corpus);
    return stack;
  };
  auto low = make(0.5);
  auto high = make(0.95);
  const std::vector<double> history(24, 0.5);
  EXPECT_LE(high->predict(history), low->predict(history) + 1e-9);
}

TEST(CorpStackTest, SeededTrackerPopulated) {
  util::Rng rng(19);
  CorpStack::Options options;
  options.dnn.trainer.max_epochs = 8;
  CorpStack stack(options, rng);
  stack.train(training_corpus(9));
  EXPECT_GT(stack.tracker().count(), 10u);
  EXPECT_GT(stack.absolute_tolerance(), 0.0);
  EXPECT_GE(stack.gate_probability(), 0.0);
  EXPECT_LE(stack.gate_probability(), 1.0);
}

TEST(CorpStackTest, GateRespectsThreshold) {
  util::Rng rng(19);
  CorpStack::Options options;
  options.dnn.trainer.max_epochs = 8;
  options.stack.probability_threshold = 0.0;  // always open once seeded
  CorpStack open_stack(options, rng);
  open_stack.train(training_corpus(9));
  EXPECT_TRUE(open_stack.unlocked());

  util::Rng rng2(19);
  options.stack.probability_threshold = 1.01;  // never satisfiable
  CorpStack closed_stack(options, rng2);
  closed_stack.train(training_corpus(9));
  EXPECT_FALSE(closed_stack.unlocked());
}

TEST(StackBuilderTest, RejectsOutOfRangeKnobs) {
  util::Rng rng(3);
  const auto build_with = [&rng](auto mutate) {
    StackBuilder builder(Method::kRccr);
    mutate(builder);
    return builder.build(rng);
  };
  EXPECT_THROW(build_with([](StackBuilder& b) { b.confidence_level(0.0); }),
               std::invalid_argument);
  EXPECT_THROW(build_with([](StackBuilder& b) { b.confidence_level(1.0); }),
               std::invalid_argument);
  EXPECT_THROW(
      build_with([](StackBuilder& b) { b.probability_threshold(-0.1); }),
      std::invalid_argument);
  EXPECT_THROW(
      build_with([](StackBuilder& b) { b.probability_threshold(1.5); }),
      std::invalid_argument);
  EXPECT_THROW(build_with([](StackBuilder& b) { b.error_tolerance(-1.0); }),
               std::invalid_argument);
}

TEST(StackBuilderTest, GateBoundaryThresholdsAreValidOperatingPoints) {
  // 0 (gate opens once seeded) and 1 (strictest satisfiable gate) are both
  // meaningful Eq. 21 settings and must not be rejected.
  util::Rng rng(3);
  EXPECT_NE(StackBuilder(Method::kDra).probability_threshold(0.0).build(rng),
            nullptr);
  EXPECT_NE(StackBuilder(Method::kDra).probability_threshold(1.0).build(rng),
            nullptr);
}

TEST(RccrStackTest, ConservativeBiasIsPositiveOnAverage) {
  util::Rng rng(23);
  RccrStack::Options options;
  options.stack.confidence_level = 0.9;
  RccrStack stack(options);
  const SeriesCorpus corpus = training_corpus(11);
  stack.train(corpus);
  // The confidence lower bound makes actual >= predicted on average.
  EXPECT_GT(stack.tracker().mean(), 0.0);
}

TEST(CloudScaleStackTest, PaddingReducesPrediction) {
  CloudScaleStack::Options options;
  CloudScaleStack stack(options);
  stack.train(training_corpus(13));
  // A volatile history produces a bigger burst padding than a flat one,
  // hence a lower (more damped) forecast.
  std::vector<double> flat(24, 0.5);
  std::vector<double> volatile_history;
  for (int i = 0; i < 24; ++i) {
    volatile_history.push_back(0.5 + 0.4 * ((i % 2 == 0) ? 1.0 : -1.0));
  }
  EXPECT_LE(stack.predict(volatile_history), stack.predict(flat) + 0.05);
}

TEST(DraStackTest, NeverUnlocks) {
  util::Rng rng(29);
  auto stack = make_stack(Method::kDra, StackConfig{}, rng);
  stack->train(training_corpus(15));
  for (int i = 0; i < 50; ++i) stack->record_outcome(0.5, 0.5);
  EXPECT_FALSE(stack->unlocked());
  EXPECT_DOUBLE_EQ(stack->gate_probability(), 0.0);
}

TEST(MakeStackTest, AblationFlagsOnlyAffectCorp) {
  util::Rng rng(31);
  // Should not throw for any method with flags off.
  for (Method m : kAllMethods) {
    auto stack = make_stack(m, StackConfig{}, rng, false, false);
    EXPECT_NE(stack, nullptr);
  }
}

}  // namespace
}  // namespace corp::predict
