// Differential tests pinning the batched-prediction contract: every
// predict_batch implementation must be bit-identical to calling the scalar
// path on each query in order — including the GEMM-backed DNN path, with
// and without a thread pool, and the stateful VectorPredictor replay.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "dnn/network.hpp"
#include "predict/dnn_predictor.hpp"
#include "predict/ets_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/mean_predictor.hpp"
#include "predict/stacks.hpp"
#include "predict/vector_predictor.hpp"
#include "util/thread_pool.hpp"

namespace corp::predict {
namespace {

SeriesCorpus sine_corpus(std::size_t series_count, std::size_t length,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  SeriesCorpus corpus;
  for (std::size_t s = 0; s < series_count; ++s) {
    std::vector<double> series;
    for (std::size_t i = 0; i < length; ++i) {
      series.push_back(0.5 +
                       0.3 * std::sin(0.25 * static_cast<double>(i + s * 3)) +
                       rng.normal(0.0, 0.02));
    }
    corpus.push_back(std::move(series));
  }
  return corpus;
}

/// Query rows exercising every packing branch: normal windows, shorter-
/// than-window histories (tiled left pad), a single sample, and an empty
/// history (constant fast path, skips the GEMM).
std::vector<std::vector<double>> mixed_histories(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> rows;
  for (std::size_t len : {30u, 24u, 12u, 7u, 3u, 1u, 0u, 18u}) {
    std::vector<double> h;
    for (std::size_t i = 0; i < len; ++i) {
      h.push_back(rng.uniform(0.0, 1.0));
    }
    rows.push_back(std::move(h));
  }
  return rows;
}

BatchRequest to_request(const std::vector<std::vector<double>>& rows,
                        std::size_t horizon) {
  BatchRequest request;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    request.queries.push_back(PredictionQuery{
        .entity = i, .horizon = horizon, .history = rows[i]});
  }
  return request;
}

/// Bit-identity between a predictor's batch and scalar paths on the mixed
/// rows. EXPECT_EQ on doubles is exact — that is the point.
void expect_batch_matches_scalar(SeriesPredictor& predictor,
                                 std::size_t horizon) {
  const std::vector<std::vector<double>> rows = mixed_histories(17);
  const BatchRequest request = to_request(rows, horizon);
  const BatchResult batch = predictor.predict_batch(request);
  ASSERT_EQ(batch.values.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double scalar = predictor.predict(request.queries[i]);
    EXPECT_EQ(batch.values[i], scalar) << "row " << i << " (len "
                                       << rows[i].size() << ")";
  }
}

TEST(BatchEquivalenceTest, DnnPredictorGemmPathBitIdentical) {
  util::Rng rng(3);
  DnnPredictorConfig config;
  config.hidden_layers = 2;
  config.hidden_units = 10;
  config.trainer.max_epochs = 8;
  config.trainer.pretrain_epochs = 1;
  DnnPredictor dnn(config, rng);
  dnn.train(sine_corpus(3, 90, 5));
  expect_batch_matches_scalar(dnn, config.horizon_slots);
}

TEST(BatchEquivalenceTest, DnnPredictorBatchBeforeTrainThrows) {
  util::Rng rng(3);
  DnnPredictor dnn({}, rng);
  const BatchRequest request = to_request(mixed_histories(17), 6);
  EXPECT_THROW(dnn.predict_batch(request), std::logic_error);
}

TEST(BatchEquivalenceTest, ScalarAdapterPredictorsBitIdentical) {
  const SeriesCorpus corpus = sine_corpus(3, 90, 5);

  EtsPredictor ets;
  ets.train(corpus);
  expect_batch_matches_scalar(ets, 3);

  MarkovChainPredictor markov;
  markov.train(corpus);
  expect_batch_matches_scalar(markov, 6);

  SlidingMeanPredictor mean;
  mean.train(corpus);
  expect_batch_matches_scalar(mean, 6);
}

TEST(BatchEquivalenceTest, AllStacksBitIdentical) {
  const SeriesCorpus corpus = sine_corpus(3, 90, 5);
  const std::vector<std::vector<double>> rows = mixed_histories(23);
  const BatchRequest request = to_request(rows, 0);
  for (Method method : kAllMethods) {
    util::Rng rng(7);
    StackConfig config;
    auto stack = make_stack(method, config, rng);
    stack->train(corpus);
    const BatchResult batch = stack->predict_batch(request);
    ASSERT_EQ(batch.values.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batch.values[i], stack->predict(rows[i]))
          << method_name(method) << " row " << i;
    }
  }
}

TEST(BatchEquivalenceTest, NetworkForwardBatchShardedBitIdentical) {
  util::Rng rng(9);
  dnn::NetworkConfig config;
  config.input_size = 6;
  config.hidden_layers = 2;
  config.hidden_units = 12;
  dnn::Network network(config, rng);

  // Enough rows to cross kForwardBatchShardMinRows so the pool path runs.
  const std::size_t rows = dnn::kForwardBatchShardMinRows + 17;
  dnn::Matrix inputs(rows, config.input_size);
  for (std::size_t n = 0; n < rows; ++n) {
    for (std::size_t c = 0; c < config.input_size; ++c) {
      inputs(n, c) = rng.uniform(-1.0, 1.0);
    }
  }

  const dnn::Matrix serial = network.forward_batch(inputs);
  util::ThreadPool pool(4);
  const dnn::Matrix sharded = network.forward_batch(inputs, &pool);
  ASSERT_EQ(sharded.rows(), rows);
  for (std::size_t n = 0; n < rows; ++n) {
    const dnn::Vector single = network.predict(inputs.row(n));
    EXPECT_EQ(serial(n, 0), single[0]) << "row " << n;
    EXPECT_EQ(sharded(n, 0), single[0]) << "row " << n;
  }
}

// ------------------------------------------------- VectorPredictor -------

VectorCorpus vector_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  VectorCorpus corpus;
  for (int s = 0; s < 3; ++s) {
    std::vector<ResourceVector> series;
    for (int i = 0; i < 90; ++i) {
      const double u = 0.5 + 0.2 * std::sin(0.3 * i) + rng.normal(0.0, 0.03);
      series.push_back(ResourceVector(u, u * 0.9, u * 1.1));
    }
    corpus.add_series(series);
  }
  return corpus;
}

/// Per-job histories, including one with NaN telemetry gaps (imputed
/// inside predict/predict_batch) and one shorter than the DNN window.
std::vector<std::array<std::vector<double>, kNumResources>> vector_histories() {
  std::vector<std::array<std::vector<double>, kNumResources>> jobs(5);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      const std::size_t len = i == 3 ? 4 : 20;
      for (std::size_t t = 0; t < len; ++t) {
        jobs[i][r].push_back(
            0.4 + 0.1 * static_cast<double>(r) +
            0.2 * std::sin(0.4 * static_cast<double>(t + i)));
      }
    }
  }
  // Job 1 has telemetry gaps on resource 0, including a leading gap.
  jobs[1][0][0] = std::numeric_limits<double>::quiet_NaN();
  jobs[1][0][7] = std::numeric_limits<double>::quiet_NaN();
  jobs[1][0][8] = std::numeric_limits<double>::quiet_NaN();
  return jobs;
}

void expect_vector_batch_matches_scalar(
    Method method, const std::vector<InjectedFaultVector>& faults) {
  const VectorCorpus corpus = vector_corpus(11);
  const auto jobs = vector_histories();

  util::Rng rng_scalar(13);
  util::Rng rng_batch(13);
  VectorPredictor scalar(method, StackConfig{}, rng_scalar);
  VectorPredictor batched(method, StackConfig{}, rng_batch);
  scalar.train(corpus);
  batched.train(corpus);

  VectorBatchRequest request;
  for (const auto& job : jobs) request.histories.push_back(&job);
  request.faults = faults;

  std::vector<ResourceVector> expected;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expected.push_back(faults.empty() ? scalar.predict(jobs[i])
                                      : scalar.predict(jobs[i], faults[i]));
  }
  const std::vector<ResourceVector> got = batched.predict_batch(request);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      EXPECT_EQ(got[i][r], expected[i][r]) << "job " << i << " type " << r;
    }
  }
  // The health ladder must have walked the same path.
  EXPECT_EQ(batched.tier(), scalar.tier());
}

TEST(BatchEquivalenceTest, VectorPredictorCloudScaleWithGaps) {
  expect_vector_batch_matches_scalar(Method::kCloudScale, {});
}

TEST(BatchEquivalenceTest, VectorPredictorCorpGemmWithGaps) {
  expect_vector_batch_matches_scalar(Method::kCorp, {});
}

TEST(BatchEquivalenceTest, VectorPredictorFaultReplayMatchesScalar) {
  // Poison mid-batch: NaN on job 2's CPU forecast and a magnitude blow-up
  // on job 4's memory forecast. The batched health replay must demote /
  // substitute on exactly the rows the sequential sweep does.
  std::vector<InjectedFaultVector> faults(5);
  faults[2][0] = InjectedFault::kNan;
  faults[4][1] = InjectedFault::kExplode;
  expect_vector_batch_matches_scalar(Method::kCloudScale, faults);
}

TEST(BatchEquivalenceTest, VectorPredictorBatchSizeMismatchThrows) {
  util::Rng rng(3);
  VectorPredictor predictor(Method::kDra, StackConfig{}, rng);
  predictor.train(vector_corpus(11));
  const auto jobs = vector_histories();
  VectorBatchRequest request;
  for (const auto& job : jobs) request.histories.push_back(&job);
  request.faults.resize(jobs.size() - 1);
  EXPECT_THROW(predictor.predict_batch(request), std::invalid_argument);
}

}  // namespace
}  // namespace corp::predict
