#include "predict/hmm_corrector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace corp::predict {
namespace {

SeriesCorpus bursty_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  SeriesCorpus corpus;
  for (int s = 0; s < 3; ++s) {
    std::vector<double> series;
    for (int i = 0; i < 240; ++i) {
      // Alternating calm and volatile stretches.
      const bool volatile_phase = (i / 24) % 2 == 1;
      const double base = 0.5;
      const double amp = volatile_phase ? 0.35 : 0.05;
      series.push_back(base + amp * std::sin(0.9 * i) +
                       rng.normal(0.0, 0.02));
    }
    corpus.push_back(std::move(series));
  }
  return corpus;
}

TEST(HmmCorrectorTest, RejectsTinyWindow) {
  util::Rng rng(1);
  HmmCorrectorConfig config;
  config.window_slots = 1;
  EXPECT_THROW(HmmCorrector(config, rng), std::invalid_argument);
}

TEST(HmmCorrectorTest, UnfittedThrows) {
  util::Rng rng(1);
  HmmCorrector corrector({}, rng);
  EXPECT_THROW(corrector.predict_symbol(std::vector<double>(20, 0.5)),
               std::logic_error);
  EXPECT_THROW(corrector.model(), std::logic_error);
}

TEST(HmmCorrectorTest, EmptyCorpusThrows) {
  util::Rng rng(1);
  HmmCorrector corrector({}, rng);
  EXPECT_THROW(corrector.fit({}), std::invalid_argument);
}

TEST(HmmCorrectorTest, FitBuildsModel) {
  util::Rng rng(2);
  HmmCorrector corrector({}, rng);
  corrector.fit(bursty_corpus(3));
  EXPECT_TRUE(corrector.fitted());
  EXPECT_EQ(corrector.model().num_states(), 3u);
  EXPECT_EQ(corrector.model().num_symbols(),
            hmm::kNumFluctuationSymbols);
  EXPECT_GE(corrector.correction_magnitude(), 0.0);
}

TEST(HmmCorrectorTest, ShortHistoryLeavesPredictionUntouched) {
  util::Rng rng(2);
  HmmCorrectorConfig config;
  config.window_slots = 6;
  HmmCorrector corrector(config, rng);
  corrector.fit(bursty_corpus(3));
  // Fewer than two complete windows -> no symbol -> identity correction.
  const std::vector<double> short_history(7, 0.5);
  EXPECT_FALSE(corrector.predict_symbol(short_history).has_value());
  EXPECT_DOUBLE_EQ(corrector.correct(0.42, short_history), 0.42);
}

TEST(HmmCorrectorTest, CorrectionMovesByExactlyMagnitude) {
  util::Rng rng(4);
  HmmCorrectorConfig config;
  config.window_slots = 4;
  HmmCorrector corrector(config, rng);
  corrector.fit(bursty_corpus(5));
  const double magnitude = corrector.correction_magnitude();

  // Find histories that produce each symbol and verify the adjustment.
  util::Rng scan(9);
  bool saw_peak = false, saw_valley = false, saw_center = false;
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<double> history;
    const double amp = scan.uniform(0.0, 0.45);
    for (int i = 0; i < 16; ++i) {
      history.push_back(0.5 + amp * std::sin(1.1 * i + attempt));
    }
    const auto symbol = corrector.predict_symbol(history);
    if (!symbol.has_value()) continue;
    const double corrected = corrector.correct(1.0, history);
    switch (*symbol) {
      case hmm::FluctuationSymbol::kPeak:
        EXPECT_NEAR(corrected, 1.0 + magnitude, 1e-12);
        saw_peak = true;
        break;
      case hmm::FluctuationSymbol::kValley:
        EXPECT_NEAR(corrected, 1.0 - magnitude, 1e-12);
        saw_valley = true;
        break;
      case hmm::FluctuationSymbol::kCenter:
        EXPECT_DOUBLE_EQ(corrected, 1.0);
        saw_center = true;
        break;
    }
  }
  // At least two distinct symbols should have been exercised.
  EXPECT_TRUE((saw_peak || saw_valley) && (saw_center || (saw_peak && saw_valley)));
}

TEST(HmmCorrectorTest, MagnitudeBoundedByWindowMeanBand) {
  util::Rng rng(6);
  HmmCorrector corrector({}, rng);
  const SeriesCorpus corpus = bursty_corpus(7);
  corrector.fit(corpus);
  // The p80/p20 band of window means is far narrower than the raw range.
  double lo = 1e9, hi = -1e9;
  for (const auto& s : corpus) {
    for (double x : s) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  EXPECT_LT(corrector.correction_magnitude(), 0.5 * (hi - lo));
}

}  // namespace
}  // namespace corp::predict
