// Scenario: offline capacity planning with the trace tooling.
//
// A provider has coarse (5-minute) monitoring records. This example walks
// the paper's own data path: resample to 10-second slots, drop long-lived
// jobs, persist the result as CSV, then report the workload statistics a
// capacity planner needs — class mix, duration and request distributions,
// and the reservation-vs-usage gap that opportunistic provisioning can
// reclaim.
//
//   ./capacity_planning [output.csv]
#include <iostream>
#include <string>

#include "trace/generator.hpp"
#include "trace/resampler.hpp"
#include "trace/trace_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace corp;

  // 1. A coarse trace, as monitoring systems record it: one usage sample
  //    per 5 minutes. We synthesize it with the generator and then treat
  //    each recorded slot as a 5-minute sample.
  trace::GeneratorConfig config;
  config.num_jobs = 40;
  config.horizon_slots = 12;
  config.max_duration_slots = 60;  // includes some long-lived jobs
  config.duration_log_mu = 2.2;
  trace::GoogleTraceGenerator generator(config);
  util::Rng rng(21);
  trace::Trace coarse = generator.generate(rng);
  std::cout << "coarse trace: " << coarse.size()
            << " tasks at 5-minute resolution\n";

  // 2. The paper's transformation: 5-minute records -> 10-second slots,
  //    then remove long-lived jobs (> 5 minutes).
  trace::ResampleConfig resample;  // 30 fine slots per coarse sample
  util::Rng jitter_rng(22);
  trace::Trace fine;
  std::size_t removed = 0;
  for (const auto& job : coarse.jobs()) {
    if (job.duration_slots > trace::kShortJobMaxSlots) {
      ++removed;  // long-lived: dropped, as in Sec. IV
      continue;
    }
    fine.add(trace::resample_job(job, resample, jitter_rng));
  }
  fine.sort();
  std::cout << "resampled to 10-second slots; removed " << removed
            << " long-lived jobs, " << fine.size() << " remain\n";

  // 3. Persist and reload (round-trip through the CSV trace format).
  const std::string path = argc > 1 ? argv[1] : "/tmp/corp_planning.csv";
  trace::write_trace_csv_file(fine, path);
  const trace::Trace loaded = trace::read_trace_csv_file(path);
  std::cout << "trace round-tripped through " << path << " ("
            << loaded.size() << " tasks)\n\n";

  // 4. Planner statistics.
  const auto hist = loaded.class_histogram();
  util::TextTable mix({"class", "tasks"});
  for (std::size_t c = 0; c < hist.size(); ++c) {
    mix.add_row(std::string(trace::job_class_name(
                    static_cast<trace::JobClass>(c))),
                {static_cast<double>(hist[c])});
  }
  std::cout << mix.to_string() << '\n';

  std::vector<double> durations, cpu_requests, unused_fraction;
  for (const auto& job : loaded.jobs()) {
    durations.push_back(static_cast<double>(job.duration_slots) *
                        trace::kSlotSeconds);
    cpu_requests.push_back(job.request.cpu());
    if (job.request.cpu() > 0) {
      unused_fraction.push_back(job.unused_at(0).cpu() / job.request.cpu());
    }
  }
  const auto dur = util::summarize(durations);
  const auto cpu = util::summarize(cpu_requests);
  const auto unused = util::summarize(unused_fraction);

  util::TextTable stats({"metric", "mean", "median", "p95", "max"});
  stats.add_row("duration (s)", {dur.mean, dur.median, dur.p95, dur.max});
  stats.add_row("cpu request (cores)",
                {cpu.mean, cpu.median, cpu.p95, cpu.max});
  stats.add_row("unused cpu fraction",
                {unused.mean, unused.median, unused.p95, unused.max});
  std::cout << stats.to_string();

  std::cout << "\nOn average " << static_cast<int>(unused.mean * 100)
            << "% of each reservation sits unused — the headroom CORP's "
               "opportunistic provisioning reclaims without new servers.\n";
  return 0;
}
