// Scenario: a burst of short-lived IoT / online-analytics queries — the
// workload the paper's introduction motivates ("short-lived queries in the
// applications of Internet-of-Things and online data processing, typically
// run for seconds or minutes").
//
// A storm of sub-minute queries lands on an already-busy cluster; CORP
// absorbs it by riding the temporarily-unused headroom of the resident
// jobs' reservations instead of queueing behind fresh capacity.
//
//   ./iot_query_burst [seed]
#include <cstdlib>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 11;

  const auto env = cluster::EnvironmentConfig::PalmettoCluster();

  // Background: medium-length tasks spread over five minutes.
  trace::GeneratorConfig background =
      sim::scaled_generator_config(env, 60, 30);
  background.duration_log_mu = 2.4;  // longer residents (median ~11 slots)

  // Burst: many tiny queries arriving within 30 seconds.
  trace::GeneratorConfig burst = sim::scaled_generator_config(env, 80, 3);
  burst.duration_log_mu = 1.0;   // median ~3 slots (30 s)
  burst.duration_log_sigma = 0.4;
  burst.tasks_log_mu = 1.8;      // large fan-out per query job

  util::Rng rng(seed);
  trace::GoogleTraceGenerator bg_gen(background);
  trace::GoogleTraceGenerator burst_gen(burst);
  trace::Trace workload = bg_gen.generate(rng);
  trace::Trace storm = burst_gen.generate(rng);
  // The storm lands at slot 12, mid-way through the background wave.
  for (auto job : storm.jobs()) {
    job.submit_slot += 12;
    job.id += 1'000'000;  // keep ids unique across the merge
    workload.add(job);
  }
  workload.sort();

  std::cout << "IoT query burst: " << workload.size()
            << " tasks (background + storm at t=120s) on " << env.name
            << "\n\n";

  // Historical corpus for training, from the same cluster's past.
  trace::GoogleTraceGenerator history_gen(
      sim::scaled_generator_config(env, 200, 240));
  util::Rng history_rng(seed * 13 + 1);
  const trace::Trace history = history_gen.generate(history_rng);

  util::TextTable table({"method", "overall util", "slo violations",
                         "opportunistic", "mean stretch", "latency ms"});
  sim::ExperimentConfig experiment;
  experiment.environment = env;
  experiment.seed = seed;
  for (predict::Method method : predict::kAllMethods) {
    // The harness maps Table II's conservative corner values onto a
    // moderate default operating point per method.
    sim::SimulationConfig config =
        sim::make_simulation_config(experiment, method);
    config.seed = seed;
    sim::Simulation simulation(std::move(config));
    simulation.train(history);
    const sim::SimulationResult r = simulation.run(workload);
    table.add_row(std::string(predict::method_name(method)),
                  {r.overall_utilization, r.slo_violation_rate,
                   static_cast<double>(r.opportunistic_placements),
                   r.mean_stretch, r.total_latency_ms});
  }
  std::cout << table.to_string()
            << "\nCORP's opportunistic placements absorb the storm on the "
               "residents' unused reservations; the demand-based baselines "
               "must commit fresh capacity for every query.\n";
  return 0;
}
