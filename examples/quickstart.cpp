// Quickstart: run CORP and the three baselines on one synthetic
// short-lived-job workload and compare utilization, SLO violations and
// allocation latency.
//
//   ./quickstart [num_jobs] [seed]
#include <cstdlib>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace corp;

  std::size_t num_jobs = 150;
  std::uint64_t seed = 7;
  if (argc > 1) num_jobs = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::PalmettoCluster();
  experiment.seed = seed;

  std::cout << "CORP quickstart: " << num_jobs << " short-lived jobs on "
            << experiment.environment.name << " ("
            << experiment.environment.num_pms << " PMs, "
            << experiment.environment.total_vms() << " VMs)\n\n";

  util::TextTable table({"method", "cpu util", "mem util", "sto util",
                         "overall", "slo viol", "pred err", "latency ms",
                         "opp/resv"});
  for (predict::Method method : predict::kAllMethods) {
    const sim::PointResult point =
        sim::run_point(experiment, method, num_jobs);
    const auto& r = point.sim;
    table.add_row(std::string(predict::method_name(method)),
                  {r.mean_utilization[0], r.mean_utilization[1],
                   r.mean_utilization[2], r.overall_utilization,
                   r.slo_violation_rate, point.prediction.error_rate,
                   r.total_latency_ms,
                   static_cast<double>(r.opportunistic_placements) /
                       static_cast<double>(std::max<std::size_t>(
                           1, r.reserved_placements))});
    std::cout << "ran " << predict::method_name(method) << ": "
              << r.jobs_completed << " jobs completed, "
              << r.jobs_violated << " SLO violations, "
              << r.opportunistic_placements << " opportunistic placements\n";
  }
  std::cout << '\n' << table.to_string();
  std::cout << "\nExpected shape (paper Sec. IV): utilization "
               "CORP > RCCR > CloudScale > DRA; SLO violations and "
               "prediction error CORP < RCCR < CloudScale < DRA; CORP "
               "latency slightly above the baselines.\n";
  return 0;
}
