// Scenario: the prediction stack under a microscope.
//
// Trains CORP's full pipeline (DNN + HMM correction + confidence bound +
// Eq. 21 gate) next to the three baselines on the same historical corpus,
// then walks one job's life slot-by-slot, printing each method's forecast
// of the next window's unused CPU against what actually happened.
//
//   ./predictor_playground [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "predict/stack_builder.hpp"
#include "predict/stacks.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3;

  const auto env = cluster::EnvironmentConfig::PalmettoCluster();

  // Historical corpus (request-normalized unused-CPU series).
  trace::GoogleTraceGenerator history_gen(
      sim::scaled_generator_config(env, 200, 240));
  util::Rng history_rng(seed);
  const trace::Trace history = history_gen.generate(history_rng);
  const predict::VectorCorpus corpus = sim::build_unused_corpus(history);
  constexpr std::size_t kCpu = 0;

  std::cout << "training on " << corpus.per_type[kCpu].size()
            << " historical unused-CPU segments...\n";

  // Use the experiment harness's default operating point: Table II's raw
  // values (eta = 0.9, P_th = 0.95) describe the most conservative corner
  // of the sweep; the harness maps a moderate aggressiveness onto them.
  sim::ExperimentConfig experiment;
  experiment.environment = env;
  const predict::StackConfig stack_config =
      *sim::make_simulation_config(experiment, predict::Method::kCorp).stack;

  util::Rng rng(seed * 7 + 1);
  std::vector<std::unique_ptr<predict::PredictionStack>> stacks;
  for (predict::Method m : predict::kAllMethods) {
    stacks.push_back(
        predict::StackBuilder(m).config(stack_config).build(rng));
    stacks.back()->train(corpus.per_type[kCpu]);
  }

  // Pick a reasonably long job from a fresh trace to walk through.
  trace::GoogleTraceGenerator eval_gen(
      sim::scaled_generator_config(env, 40, 20));
  util::Rng eval_rng(seed * 11 + 2);
  const trace::Trace eval = eval_gen.generate(eval_rng);
  const trace::Job* subject = nullptr;
  for (const auto& job : eval.jobs()) {
    if (job.duration_slots >= 24 &&
        (subject == nullptr ||
         job.duration_slots > subject->duration_slots)) {
      subject = &job;
    }
  }
  if (subject == nullptr) {
    std::cerr << "no long-enough job in the sample trace\n";
    return 1;
  }

  std::cout << "subject task " << subject->id << ": "
            << subject->duration_slots << " slots, request "
            << subject->request << ", class "
            << trace::job_class_name(subject->job_class) << "\n\n";

  std::vector<double> unused;
  for (std::size_t t = 0; t < subject->usage.size(); ++t) {
    unused.push_back(subject->unused_at(t)[kCpu] /
                     subject->request[kCpu]);
  }

  const std::size_t window = trace::kWindowSlots;
  util::TextTable table({"t (slot)", "actual next-window", "CORP", "RCCR",
                         "CloudScale", "DRA"});
  for (std::size_t t = window; t + window < unused.size(); t += window) {
    const std::span<const double> observed(unused.data(), t);
    double actual = 0.0;
    for (std::size_t k = 0; k < window; ++k) actual += unused[t + k];
    actual /= static_cast<double>(window);
    std::vector<double> row{actual};
    for (auto& stack : stacks) row.push_back(stack->predict(observed));
    table.add_row(std::to_string(t), row);
  }
  std::cout << "request-normalized unused CPU, forecast one window (1 min) "
               "ahead:\n"
            << table.to_string() << '\n';

  // Gate state (Eq. 21): which stacks would currently unlock their
  // predicted unused resource for reallocation?
  util::TextTable gates({"method", "gate probability", "unlocked"});
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    gates.add_row(std::string(predict::method_name(predict::kAllMethods[i])),
                  {stacks[i]->gate_probability(),
                   stacks[i]->unlocked() ? 1.0 : 0.0});
  }
  std::cout << gates.to_string()
            << "\nCORP's forecasts sit just under the actuals (the Eq. 19 "
               "lower bound), which is what keeps its gate probability "
               "high: errors are small AND on the safe side.\n";
  return 0;
}
