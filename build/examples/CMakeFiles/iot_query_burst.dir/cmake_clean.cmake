file(REMOVE_RECURSE
  "CMakeFiles/iot_query_burst.dir/iot_query_burst.cpp.o"
  "CMakeFiles/iot_query_burst.dir/iot_query_burst.cpp.o.d"
  "iot_query_burst"
  "iot_query_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_query_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
