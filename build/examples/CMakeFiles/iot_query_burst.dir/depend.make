# Empty dependencies file for iot_query_burst.
# This may be replaced when dependencies are built.
