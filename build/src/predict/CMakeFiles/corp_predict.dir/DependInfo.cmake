
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/backtest.cpp" "src/predict/CMakeFiles/corp_predict.dir/backtest.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/backtest.cpp.o.d"
  "/root/repo/src/predict/dnn_predictor.cpp" "src/predict/CMakeFiles/corp_predict.dir/dnn_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/dnn_predictor.cpp.o.d"
  "/root/repo/src/predict/error_tracker.cpp" "src/predict/CMakeFiles/corp_predict.dir/error_tracker.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/error_tracker.cpp.o.d"
  "/root/repo/src/predict/ets_predictor.cpp" "src/predict/CMakeFiles/corp_predict.dir/ets_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/ets_predictor.cpp.o.d"
  "/root/repo/src/predict/hmm_corrector.cpp" "src/predict/CMakeFiles/corp_predict.dir/hmm_corrector.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/hmm_corrector.cpp.o.d"
  "/root/repo/src/predict/markov_predictor.cpp" "src/predict/CMakeFiles/corp_predict.dir/markov_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/markov_predictor.cpp.o.d"
  "/root/repo/src/predict/mean_predictor.cpp" "src/predict/CMakeFiles/corp_predict.dir/mean_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/mean_predictor.cpp.o.d"
  "/root/repo/src/predict/stacks.cpp" "src/predict/CMakeFiles/corp_predict.dir/stacks.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/stacks.cpp.o.d"
  "/root/repo/src/predict/vector_predictor.cpp" "src/predict/CMakeFiles/corp_predict.dir/vector_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/corp_predict.dir/vector_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/corp_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/corp_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/corp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
