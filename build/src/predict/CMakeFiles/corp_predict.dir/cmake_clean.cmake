file(REMOVE_RECURSE
  "CMakeFiles/corp_predict.dir/backtest.cpp.o"
  "CMakeFiles/corp_predict.dir/backtest.cpp.o.d"
  "CMakeFiles/corp_predict.dir/dnn_predictor.cpp.o"
  "CMakeFiles/corp_predict.dir/dnn_predictor.cpp.o.d"
  "CMakeFiles/corp_predict.dir/error_tracker.cpp.o"
  "CMakeFiles/corp_predict.dir/error_tracker.cpp.o.d"
  "CMakeFiles/corp_predict.dir/ets_predictor.cpp.o"
  "CMakeFiles/corp_predict.dir/ets_predictor.cpp.o.d"
  "CMakeFiles/corp_predict.dir/hmm_corrector.cpp.o"
  "CMakeFiles/corp_predict.dir/hmm_corrector.cpp.o.d"
  "CMakeFiles/corp_predict.dir/markov_predictor.cpp.o"
  "CMakeFiles/corp_predict.dir/markov_predictor.cpp.o.d"
  "CMakeFiles/corp_predict.dir/mean_predictor.cpp.o"
  "CMakeFiles/corp_predict.dir/mean_predictor.cpp.o.d"
  "CMakeFiles/corp_predict.dir/stacks.cpp.o"
  "CMakeFiles/corp_predict.dir/stacks.cpp.o.d"
  "CMakeFiles/corp_predict.dir/vector_predictor.cpp.o"
  "CMakeFiles/corp_predict.dir/vector_predictor.cpp.o.d"
  "libcorp_predict.a"
  "libcorp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
