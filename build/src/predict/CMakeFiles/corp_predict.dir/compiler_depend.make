# Empty compiler generated dependencies file for corp_predict.
# This may be replaced when dependencies are built.
