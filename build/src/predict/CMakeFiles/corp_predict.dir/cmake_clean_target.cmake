file(REMOVE_RECURSE
  "libcorp_predict.a"
)
