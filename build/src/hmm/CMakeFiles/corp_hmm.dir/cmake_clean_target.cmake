file(REMOVE_RECURSE
  "libcorp_hmm.a"
)
