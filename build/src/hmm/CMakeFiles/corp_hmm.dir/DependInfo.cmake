
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmm/hmm.cpp" "src/hmm/CMakeFiles/corp_hmm.dir/hmm.cpp.o" "gcc" "src/hmm/CMakeFiles/corp_hmm.dir/hmm.cpp.o.d"
  "/root/repo/src/hmm/symbolizer.cpp" "src/hmm/CMakeFiles/corp_hmm.dir/symbolizer.cpp.o" "gcc" "src/hmm/CMakeFiles/corp_hmm.dir/symbolizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
