file(REMOVE_RECURSE
  "CMakeFiles/corp_hmm.dir/hmm.cpp.o"
  "CMakeFiles/corp_hmm.dir/hmm.cpp.o.d"
  "CMakeFiles/corp_hmm.dir/symbolizer.cpp.o"
  "CMakeFiles/corp_hmm.dir/symbolizer.cpp.o.d"
  "libcorp_hmm.a"
  "libcorp_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
