# Empty compiler generated dependencies file for corp_hmm.
# This may be replaced when dependencies are built.
