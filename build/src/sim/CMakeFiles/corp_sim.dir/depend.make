# Empty dependencies file for corp_sim.
# This may be replaced when dependencies are built.
