file(REMOVE_RECURSE
  "libcorp_sim.a"
)
