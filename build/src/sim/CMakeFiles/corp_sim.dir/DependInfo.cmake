
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/corp_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/params.cpp" "src/sim/CMakeFiles/corp_sim.dir/params.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/params.cpp.o.d"
  "/root/repo/src/sim/prediction_eval.cpp" "src/sim/CMakeFiles/corp_sim.dir/prediction_eval.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/prediction_eval.cpp.o.d"
  "/root/repo/src/sim/replication.cpp" "src/sim/CMakeFiles/corp_sim.dir/replication.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/replication.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/corp_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/corp_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/workloads.cpp" "src/sim/CMakeFiles/corp_sim.dir/workloads.cpp.o" "gcc" "src/sim/CMakeFiles/corp_sim.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/corp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/corp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/corp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/corp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/corp_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/corp_hmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
