file(REMOVE_RECURSE
  "CMakeFiles/corp_sim.dir/experiment.cpp.o"
  "CMakeFiles/corp_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/corp_sim.dir/params.cpp.o"
  "CMakeFiles/corp_sim.dir/params.cpp.o.d"
  "CMakeFiles/corp_sim.dir/prediction_eval.cpp.o"
  "CMakeFiles/corp_sim.dir/prediction_eval.cpp.o.d"
  "CMakeFiles/corp_sim.dir/replication.cpp.o"
  "CMakeFiles/corp_sim.dir/replication.cpp.o.d"
  "CMakeFiles/corp_sim.dir/simulation.cpp.o"
  "CMakeFiles/corp_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/corp_sim.dir/timeline.cpp.o"
  "CMakeFiles/corp_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/corp_sim.dir/workloads.cpp.o"
  "CMakeFiles/corp_sim.dir/workloads.cpp.o.d"
  "libcorp_sim.a"
  "libcorp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
