# Empty dependencies file for corp_util.
# This may be replaced when dependencies are built.
