file(REMOVE_RECURSE
  "CMakeFiles/corp_util.dir/cli.cpp.o"
  "CMakeFiles/corp_util.dir/cli.cpp.o.d"
  "CMakeFiles/corp_util.dir/csv.cpp.o"
  "CMakeFiles/corp_util.dir/csv.cpp.o.d"
  "CMakeFiles/corp_util.dir/logging.cpp.o"
  "CMakeFiles/corp_util.dir/logging.cpp.o.d"
  "CMakeFiles/corp_util.dir/rng.cpp.o"
  "CMakeFiles/corp_util.dir/rng.cpp.o.d"
  "CMakeFiles/corp_util.dir/stats.cpp.o"
  "CMakeFiles/corp_util.dir/stats.cpp.o.d"
  "CMakeFiles/corp_util.dir/table.cpp.o"
  "CMakeFiles/corp_util.dir/table.cpp.o.d"
  "CMakeFiles/corp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/corp_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/corp_util.dir/time_series.cpp.o"
  "CMakeFiles/corp_util.dir/time_series.cpp.o.d"
  "libcorp_util.a"
  "libcorp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
