file(REMOVE_RECURSE
  "libcorp_util.a"
)
