file(REMOVE_RECURSE
  "CMakeFiles/corp_cluster.dir/cluster.cpp.o"
  "CMakeFiles/corp_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/corp_cluster.dir/environment.cpp.o"
  "CMakeFiles/corp_cluster.dir/environment.cpp.o.d"
  "CMakeFiles/corp_cluster.dir/metrics.cpp.o"
  "CMakeFiles/corp_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/corp_cluster.dir/slo.cpp.o"
  "CMakeFiles/corp_cluster.dir/slo.cpp.o.d"
  "CMakeFiles/corp_cluster.dir/vm.cpp.o"
  "CMakeFiles/corp_cluster.dir/vm.cpp.o.d"
  "libcorp_cluster.a"
  "libcorp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
