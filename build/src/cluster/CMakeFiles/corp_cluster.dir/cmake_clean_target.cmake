file(REMOVE_RECURSE
  "libcorp_cluster.a"
)
