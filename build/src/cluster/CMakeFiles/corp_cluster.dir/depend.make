# Empty dependencies file for corp_cluster.
# This may be replaced when dependencies are built.
