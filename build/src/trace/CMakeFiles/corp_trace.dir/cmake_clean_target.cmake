file(REMOVE_RECURSE
  "libcorp_trace.a"
)
