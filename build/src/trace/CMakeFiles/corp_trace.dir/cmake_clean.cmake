file(REMOVE_RECURSE
  "CMakeFiles/corp_trace.dir/generator.cpp.o"
  "CMakeFiles/corp_trace.dir/generator.cpp.o.d"
  "CMakeFiles/corp_trace.dir/google_format.cpp.o"
  "CMakeFiles/corp_trace.dir/google_format.cpp.o.d"
  "CMakeFiles/corp_trace.dir/job.cpp.o"
  "CMakeFiles/corp_trace.dir/job.cpp.o.d"
  "CMakeFiles/corp_trace.dir/resampler.cpp.o"
  "CMakeFiles/corp_trace.dir/resampler.cpp.o.d"
  "CMakeFiles/corp_trace.dir/resources.cpp.o"
  "CMakeFiles/corp_trace.dir/resources.cpp.o.d"
  "CMakeFiles/corp_trace.dir/stats.cpp.o"
  "CMakeFiles/corp_trace.dir/stats.cpp.o.d"
  "CMakeFiles/corp_trace.dir/trace_io.cpp.o"
  "CMakeFiles/corp_trace.dir/trace_io.cpp.o.d"
  "libcorp_trace.a"
  "libcorp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
