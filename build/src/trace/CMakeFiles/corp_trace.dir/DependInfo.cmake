
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/corp_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/google_format.cpp" "src/trace/CMakeFiles/corp_trace.dir/google_format.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/google_format.cpp.o.d"
  "/root/repo/src/trace/job.cpp" "src/trace/CMakeFiles/corp_trace.dir/job.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/job.cpp.o.d"
  "/root/repo/src/trace/resampler.cpp" "src/trace/CMakeFiles/corp_trace.dir/resampler.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/resampler.cpp.o.d"
  "/root/repo/src/trace/resources.cpp" "src/trace/CMakeFiles/corp_trace.dir/resources.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/resources.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/corp_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/corp_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/corp_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
