# Empty dependencies file for corp_trace.
# This may be replaced when dependencies are built.
