file(REMOVE_RECURSE
  "libcorp_dnn.a"
)
