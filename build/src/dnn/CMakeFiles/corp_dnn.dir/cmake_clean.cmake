file(REMOVE_RECURSE
  "CMakeFiles/corp_dnn.dir/activation.cpp.o"
  "CMakeFiles/corp_dnn.dir/activation.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/layer.cpp.o"
  "CMakeFiles/corp_dnn.dir/layer.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/loss.cpp.o"
  "CMakeFiles/corp_dnn.dir/loss.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/matrix.cpp.o"
  "CMakeFiles/corp_dnn.dir/matrix.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/network.cpp.o"
  "CMakeFiles/corp_dnn.dir/network.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/normalizer.cpp.o"
  "CMakeFiles/corp_dnn.dir/normalizer.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/optimizer.cpp.o"
  "CMakeFiles/corp_dnn.dir/optimizer.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/parallel_trainer.cpp.o"
  "CMakeFiles/corp_dnn.dir/parallel_trainer.cpp.o.d"
  "CMakeFiles/corp_dnn.dir/trainer.cpp.o"
  "CMakeFiles/corp_dnn.dir/trainer.cpp.o.d"
  "libcorp_dnn.a"
  "libcorp_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
