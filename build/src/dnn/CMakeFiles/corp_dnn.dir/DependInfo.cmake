
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/activation.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/activation.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/activation.cpp.o.d"
  "/root/repo/src/dnn/layer.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/layer.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/layer.cpp.o.d"
  "/root/repo/src/dnn/loss.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/loss.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/loss.cpp.o.d"
  "/root/repo/src/dnn/matrix.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/matrix.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/matrix.cpp.o.d"
  "/root/repo/src/dnn/network.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/network.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/network.cpp.o.d"
  "/root/repo/src/dnn/normalizer.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/normalizer.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/normalizer.cpp.o.d"
  "/root/repo/src/dnn/optimizer.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/optimizer.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/optimizer.cpp.o.d"
  "/root/repo/src/dnn/parallel_trainer.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/parallel_trainer.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/parallel_trainer.cpp.o.d"
  "/root/repo/src/dnn/trainer.cpp" "src/dnn/CMakeFiles/corp_dnn.dir/trainer.cpp.o" "gcc" "src/dnn/CMakeFiles/corp_dnn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
