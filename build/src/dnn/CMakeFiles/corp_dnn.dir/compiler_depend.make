# Empty compiler generated dependencies file for corp_dnn.
# This may be replaced when dependencies are built.
