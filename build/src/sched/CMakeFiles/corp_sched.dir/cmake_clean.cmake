file(REMOVE_RECURSE
  "CMakeFiles/corp_sched.dir/baseline_schedulers.cpp.o"
  "CMakeFiles/corp_sched.dir/baseline_schedulers.cpp.o.d"
  "CMakeFiles/corp_sched.dir/corp_scheduler.cpp.o"
  "CMakeFiles/corp_sched.dir/corp_scheduler.cpp.o.d"
  "CMakeFiles/corp_sched.dir/factory.cpp.o"
  "CMakeFiles/corp_sched.dir/factory.cpp.o.d"
  "CMakeFiles/corp_sched.dir/packing.cpp.o"
  "CMakeFiles/corp_sched.dir/packing.cpp.o.d"
  "CMakeFiles/corp_sched.dir/volume.cpp.o"
  "CMakeFiles/corp_sched.dir/volume.cpp.o.d"
  "libcorp_sched.a"
  "libcorp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
