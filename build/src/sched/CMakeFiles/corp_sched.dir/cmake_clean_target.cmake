file(REMOVE_RECURSE
  "libcorp_sched.a"
)
