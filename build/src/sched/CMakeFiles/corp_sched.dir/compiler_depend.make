# Empty compiler generated dependencies file for corp_sched.
# This may be replaced when dependencies are built.
