
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baseline_schedulers.cpp" "src/sched/CMakeFiles/corp_sched.dir/baseline_schedulers.cpp.o" "gcc" "src/sched/CMakeFiles/corp_sched.dir/baseline_schedulers.cpp.o.d"
  "/root/repo/src/sched/corp_scheduler.cpp" "src/sched/CMakeFiles/corp_sched.dir/corp_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/corp_sched.dir/corp_scheduler.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/corp_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/corp_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/packing.cpp" "src/sched/CMakeFiles/corp_sched.dir/packing.cpp.o" "gcc" "src/sched/CMakeFiles/corp_sched.dir/packing.cpp.o.d"
  "/root/repo/src/sched/volume.cpp" "src/sched/CMakeFiles/corp_sched.dir/volume.cpp.o" "gcc" "src/sched/CMakeFiles/corp_sched.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/corp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/corp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/corp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/corp_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/corp_hmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
