# Empty compiler generated dependencies file for corpsim.
# This may be replaced when dependencies are built.
