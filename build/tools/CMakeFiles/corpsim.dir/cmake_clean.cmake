file(REMOVE_RECURSE
  "CMakeFiles/corpsim.dir/corpsim.cpp.o"
  "CMakeFiles/corpsim.dir/corpsim.cpp.o.d"
  "corpsim"
  "corpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
