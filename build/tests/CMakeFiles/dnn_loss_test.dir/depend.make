# Empty dependencies file for dnn_loss_test.
# This may be replaced when dependencies are built.
