file(REMOVE_RECURSE
  "CMakeFiles/dnn_loss_test.dir/dnn/loss_test.cpp.o"
  "CMakeFiles/dnn_loss_test.dir/dnn/loss_test.cpp.o.d"
  "dnn_loss_test"
  "dnn_loss_test.pdb"
  "dnn_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
