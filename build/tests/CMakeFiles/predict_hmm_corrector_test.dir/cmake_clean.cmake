file(REMOVE_RECURSE
  "CMakeFiles/predict_hmm_corrector_test.dir/predict/hmm_corrector_test.cpp.o"
  "CMakeFiles/predict_hmm_corrector_test.dir/predict/hmm_corrector_test.cpp.o.d"
  "predict_hmm_corrector_test"
  "predict_hmm_corrector_test.pdb"
  "predict_hmm_corrector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_hmm_corrector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
