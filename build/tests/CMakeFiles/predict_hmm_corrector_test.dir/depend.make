# Empty dependencies file for predict_hmm_corrector_test.
# This may be replaced when dependencies are built.
