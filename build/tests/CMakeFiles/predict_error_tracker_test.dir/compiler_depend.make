# Empty compiler generated dependencies file for predict_error_tracker_test.
# This may be replaced when dependencies are built.
