file(REMOVE_RECURSE
  "CMakeFiles/predict_error_tracker_test.dir/predict/error_tracker_test.cpp.o"
  "CMakeFiles/predict_error_tracker_test.dir/predict/error_tracker_test.cpp.o.d"
  "predict_error_tracker_test"
  "predict_error_tracker_test.pdb"
  "predict_error_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_error_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
