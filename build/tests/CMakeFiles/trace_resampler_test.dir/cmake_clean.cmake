file(REMOVE_RECURSE
  "CMakeFiles/trace_resampler_test.dir/trace/resampler_test.cpp.o"
  "CMakeFiles/trace_resampler_test.dir/trace/resampler_test.cpp.o.d"
  "trace_resampler_test"
  "trace_resampler_test.pdb"
  "trace_resampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_resampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
