# Empty dependencies file for trace_resampler_test.
# This may be replaced when dependencies are built.
