file(REMOVE_RECURSE
  "CMakeFiles/sim_adversarial_test.dir/sim/adversarial_test.cpp.o"
  "CMakeFiles/sim_adversarial_test.dir/sim/adversarial_test.cpp.o.d"
  "sim_adversarial_test"
  "sim_adversarial_test.pdb"
  "sim_adversarial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
