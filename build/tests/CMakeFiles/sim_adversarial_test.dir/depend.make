# Empty dependencies file for sim_adversarial_test.
# This may be replaced when dependencies are built.
