# Empty dependencies file for dnn_normalizer_test.
# This may be replaced when dependencies are built.
