file(REMOVE_RECURSE
  "CMakeFiles/dnn_normalizer_test.dir/dnn/normalizer_test.cpp.o"
  "CMakeFiles/dnn_normalizer_test.dir/dnn/normalizer_test.cpp.o.d"
  "dnn_normalizer_test"
  "dnn_normalizer_test.pdb"
  "dnn_normalizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
