file(REMOVE_RECURSE
  "CMakeFiles/dnn_trainer_test.dir/dnn/trainer_test.cpp.o"
  "CMakeFiles/dnn_trainer_test.dir/dnn/trainer_test.cpp.o.d"
  "dnn_trainer_test"
  "dnn_trainer_test.pdb"
  "dnn_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
