file(REMOVE_RECURSE
  "CMakeFiles/util_time_series_test.dir/util/time_series_test.cpp.o"
  "CMakeFiles/util_time_series_test.dir/util/time_series_test.cpp.o.d"
  "util_time_series_test"
  "util_time_series_test.pdb"
  "util_time_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_time_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
