# Empty compiler generated dependencies file for predict_backtest_test.
# This may be replaced when dependencies are built.
