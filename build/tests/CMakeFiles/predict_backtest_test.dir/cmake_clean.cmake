file(REMOVE_RECURSE
  "CMakeFiles/predict_backtest_test.dir/predict/backtest_test.cpp.o"
  "CMakeFiles/predict_backtest_test.dir/predict/backtest_test.cpp.o.d"
  "predict_backtest_test"
  "predict_backtest_test.pdb"
  "predict_backtest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_backtest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
