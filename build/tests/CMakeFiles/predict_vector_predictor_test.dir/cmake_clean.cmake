file(REMOVE_RECURSE
  "CMakeFiles/predict_vector_predictor_test.dir/predict/vector_predictor_test.cpp.o"
  "CMakeFiles/predict_vector_predictor_test.dir/predict/vector_predictor_test.cpp.o.d"
  "predict_vector_predictor_test"
  "predict_vector_predictor_test.pdb"
  "predict_vector_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_vector_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
