# Empty dependencies file for predict_vector_predictor_test.
# This may be replaced when dependencies are built.
