# Empty compiler generated dependencies file for dnn_matrix_test.
# This may be replaced when dependencies are built.
