file(REMOVE_RECURSE
  "CMakeFiles/dnn_matrix_test.dir/dnn/matrix_test.cpp.o"
  "CMakeFiles/dnn_matrix_test.dir/dnn/matrix_test.cpp.o.d"
  "dnn_matrix_test"
  "dnn_matrix_test.pdb"
  "dnn_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
