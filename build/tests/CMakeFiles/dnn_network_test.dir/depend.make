# Empty dependencies file for dnn_network_test.
# This may be replaced when dependencies are built.
