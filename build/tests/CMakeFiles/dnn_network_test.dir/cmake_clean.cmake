file(REMOVE_RECURSE
  "CMakeFiles/dnn_network_test.dir/dnn/network_test.cpp.o"
  "CMakeFiles/dnn_network_test.dir/dnn/network_test.cpp.o.d"
  "dnn_network_test"
  "dnn_network_test.pdb"
  "dnn_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
