file(REMOVE_RECURSE
  "CMakeFiles/trace_job_test.dir/trace/job_test.cpp.o"
  "CMakeFiles/trace_job_test.dir/trace/job_test.cpp.o.d"
  "trace_job_test"
  "trace_job_test.pdb"
  "trace_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
