# Empty compiler generated dependencies file for trace_job_test.
# This may be replaced when dependencies are built.
