file(REMOVE_RECURSE
  "CMakeFiles/predict_predictors_test.dir/predict/predictors_test.cpp.o"
  "CMakeFiles/predict_predictors_test.dir/predict/predictors_test.cpp.o.d"
  "predict_predictors_test"
  "predict_predictors_test.pdb"
  "predict_predictors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_predictors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
