# Empty dependencies file for dnn_parallel_trainer_test.
# This may be replaced when dependencies are built.
