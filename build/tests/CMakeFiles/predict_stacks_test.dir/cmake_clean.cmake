file(REMOVE_RECURSE
  "CMakeFiles/predict_stacks_test.dir/predict/stacks_test.cpp.o"
  "CMakeFiles/predict_stacks_test.dir/predict/stacks_test.cpp.o.d"
  "predict_stacks_test"
  "predict_stacks_test.pdb"
  "predict_stacks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_stacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
