# Empty compiler generated dependencies file for cluster_slo_test.
# This may be replaced when dependencies are built.
