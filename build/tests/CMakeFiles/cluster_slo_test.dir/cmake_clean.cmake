file(REMOVE_RECURSE
  "CMakeFiles/cluster_slo_test.dir/cluster/slo_test.cpp.o"
  "CMakeFiles/cluster_slo_test.dir/cluster/slo_test.cpp.o.d"
  "cluster_slo_test"
  "cluster_slo_test.pdb"
  "cluster_slo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_slo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
