# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dnn_optimizer_test.
