# Empty compiler generated dependencies file for dnn_optimizer_test.
# This may be replaced when dependencies are built.
