
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dnn/optimizer_test.cpp" "tests/CMakeFiles/dnn_optimizer_test.dir/dnn/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/dnn_optimizer_test.dir/dnn/optimizer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/corp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/corp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/corp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/corp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/corp_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/corp_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/corp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/corp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
