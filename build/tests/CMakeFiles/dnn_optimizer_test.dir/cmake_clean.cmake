file(REMOVE_RECURSE
  "CMakeFiles/dnn_optimizer_test.dir/dnn/optimizer_test.cpp.o"
  "CMakeFiles/dnn_optimizer_test.dir/dnn/optimizer_test.cpp.o.d"
  "dnn_optimizer_test"
  "dnn_optimizer_test.pdb"
  "dnn_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
