file(REMOVE_RECURSE
  "CMakeFiles/dnn_activation_test.dir/dnn/activation_test.cpp.o"
  "CMakeFiles/dnn_activation_test.dir/dnn/activation_test.cpp.o.d"
  "dnn_activation_test"
  "dnn_activation_test.pdb"
  "dnn_activation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_activation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
