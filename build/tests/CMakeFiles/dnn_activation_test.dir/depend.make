# Empty dependencies file for dnn_activation_test.
# This may be replaced when dependencies are built.
