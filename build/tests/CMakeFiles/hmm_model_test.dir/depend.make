# Empty dependencies file for hmm_model_test.
# This may be replaced when dependencies are built.
