file(REMOVE_RECURSE
  "CMakeFiles/hmm_model_test.dir/hmm/hmm_test.cpp.o"
  "CMakeFiles/hmm_model_test.dir/hmm/hmm_test.cpp.o.d"
  "hmm_model_test"
  "hmm_model_test.pdb"
  "hmm_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
