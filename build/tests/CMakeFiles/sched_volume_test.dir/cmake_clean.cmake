file(REMOVE_RECURSE
  "CMakeFiles/sched_volume_test.dir/sched/volume_test.cpp.o"
  "CMakeFiles/sched_volume_test.dir/sched/volume_test.cpp.o.d"
  "sched_volume_test"
  "sched_volume_test.pdb"
  "sched_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
