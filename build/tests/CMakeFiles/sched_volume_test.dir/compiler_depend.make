# Empty compiler generated dependencies file for sched_volume_test.
# This may be replaced when dependencies are built.
