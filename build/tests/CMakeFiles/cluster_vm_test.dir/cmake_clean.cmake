file(REMOVE_RECURSE
  "CMakeFiles/cluster_vm_test.dir/cluster/vm_test.cpp.o"
  "CMakeFiles/cluster_vm_test.dir/cluster/vm_test.cpp.o.d"
  "cluster_vm_test"
  "cluster_vm_test.pdb"
  "cluster_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
