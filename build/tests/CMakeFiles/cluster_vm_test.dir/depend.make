# Empty dependencies file for cluster_vm_test.
# This may be replaced when dependencies are built.
