file(REMOVE_RECURSE
  "CMakeFiles/hmm_symbolizer_test.dir/hmm/symbolizer_test.cpp.o"
  "CMakeFiles/hmm_symbolizer_test.dir/hmm/symbolizer_test.cpp.o.d"
  "hmm_symbolizer_test"
  "hmm_symbolizer_test.pdb"
  "hmm_symbolizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_symbolizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
