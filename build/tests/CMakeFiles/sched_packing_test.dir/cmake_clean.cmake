file(REMOVE_RECURSE
  "CMakeFiles/sched_packing_test.dir/sched/packing_test.cpp.o"
  "CMakeFiles/sched_packing_test.dir/sched/packing_test.cpp.o.d"
  "sched_packing_test"
  "sched_packing_test.pdb"
  "sched_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
