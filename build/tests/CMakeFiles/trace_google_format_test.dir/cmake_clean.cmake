file(REMOVE_RECURSE
  "CMakeFiles/trace_google_format_test.dir/trace/google_format_test.cpp.o"
  "CMakeFiles/trace_google_format_test.dir/trace/google_format_test.cpp.o.d"
  "trace_google_format_test"
  "trace_google_format_test.pdb"
  "trace_google_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_google_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
