# Empty compiler generated dependencies file for trace_google_format_test.
# This may be replaced when dependencies are built.
