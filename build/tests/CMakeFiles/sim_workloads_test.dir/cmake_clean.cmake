file(REMOVE_RECURSE
  "CMakeFiles/sim_workloads_test.dir/sim/workloads_test.cpp.o"
  "CMakeFiles/sim_workloads_test.dir/sim/workloads_test.cpp.o.d"
  "sim_workloads_test"
  "sim_workloads_test.pdb"
  "sim_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
