# Empty compiler generated dependencies file for sim_workloads_test.
# This may be replaced when dependencies are built.
