file(REMOVE_RECURSE
  "CMakeFiles/trace_long_jobs_test.dir/trace/long_jobs_test.cpp.o"
  "CMakeFiles/trace_long_jobs_test.dir/trace/long_jobs_test.cpp.o.d"
  "trace_long_jobs_test"
  "trace_long_jobs_test.pdb"
  "trace_long_jobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_long_jobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
