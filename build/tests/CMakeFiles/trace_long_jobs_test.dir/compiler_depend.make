# Empty compiler generated dependencies file for trace_long_jobs_test.
# This may be replaced when dependencies are built.
