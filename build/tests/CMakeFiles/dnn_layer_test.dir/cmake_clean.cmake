file(REMOVE_RECURSE
  "CMakeFiles/dnn_layer_test.dir/dnn/layer_test.cpp.o"
  "CMakeFiles/dnn_layer_test.dir/dnn/layer_test.cpp.o.d"
  "dnn_layer_test"
  "dnn_layer_test.pdb"
  "dnn_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
