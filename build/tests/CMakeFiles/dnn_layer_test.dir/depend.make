# Empty dependencies file for dnn_layer_test.
# This may be replaced when dependencies are built.
