# Empty dependencies file for trace_resources_test.
# This may be replaced when dependencies are built.
