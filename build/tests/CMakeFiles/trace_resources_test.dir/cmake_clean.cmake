file(REMOVE_RECURSE
  "CMakeFiles/trace_resources_test.dir/trace/resources_test.cpp.o"
  "CMakeFiles/trace_resources_test.dir/trace/resources_test.cpp.o.d"
  "trace_resources_test"
  "trace_resources_test.pdb"
  "trace_resources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
