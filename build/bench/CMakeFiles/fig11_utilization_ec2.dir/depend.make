# Empty dependencies file for fig11_utilization_ec2.
# This may be replaced when dependencies are built.
