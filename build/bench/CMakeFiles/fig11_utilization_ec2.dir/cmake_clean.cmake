file(REMOVE_RECURSE
  "CMakeFiles/fig11_utilization_ec2.dir/fig11_utilization_ec2.cpp.o"
  "CMakeFiles/fig11_utilization_ec2.dir/fig11_utilization_ec2.cpp.o.d"
  "fig11_utilization_ec2"
  "fig11_utilization_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_utilization_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
