# Empty dependencies file for fig13_slo_vs_confidence_ec2.
# This may be replaced when dependencies are built.
