file(REMOVE_RECURSE
  "CMakeFiles/fig13_slo_vs_confidence_ec2.dir/fig13_slo_vs_confidence_ec2.cpp.o"
  "CMakeFiles/fig13_slo_vs_confidence_ec2.dir/fig13_slo_vs_confidence_ec2.cpp.o.d"
  "fig13_slo_vs_confidence_ec2"
  "fig13_slo_vs_confidence_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_slo_vs_confidence_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
