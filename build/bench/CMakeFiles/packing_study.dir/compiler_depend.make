# Empty compiler generated dependencies file for packing_study.
# This may be replaced when dependencies are built.
