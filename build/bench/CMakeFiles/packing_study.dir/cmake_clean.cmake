file(REMOVE_RECURSE
  "CMakeFiles/packing_study.dir/packing_study.cpp.o"
  "CMakeFiles/packing_study.dir/packing_study.cpp.o.d"
  "packing_study"
  "packing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
