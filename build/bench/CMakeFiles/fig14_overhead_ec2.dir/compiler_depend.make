# Empty compiler generated dependencies file for fig14_overhead_ec2.
# This may be replaced when dependencies are built.
