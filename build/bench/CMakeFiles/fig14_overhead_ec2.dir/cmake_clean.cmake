file(REMOVE_RECURSE
  "CMakeFiles/fig14_overhead_ec2.dir/fig14_overhead_ec2.cpp.o"
  "CMakeFiles/fig14_overhead_ec2.dir/fig14_overhead_ec2.cpp.o.d"
  "fig14_overhead_ec2"
  "fig14_overhead_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overhead_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
