# Empty compiler generated dependencies file for fig06_prediction_error.
# This may be replaced when dependencies are built.
