file(REMOVE_RECURSE
  "CMakeFiles/fig12_util_vs_slo_ec2.dir/fig12_util_vs_slo_ec2.cpp.o"
  "CMakeFiles/fig12_util_vs_slo_ec2.dir/fig12_util_vs_slo_ec2.cpp.o.d"
  "fig12_util_vs_slo_ec2"
  "fig12_util_vs_slo_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_util_vs_slo_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
