# Empty dependencies file for fig12_util_vs_slo_ec2.
# This may be replaced when dependencies are built.
