file(REMOVE_RECURSE
  "CMakeFiles/fig10_overhead_cluster.dir/fig10_overhead_cluster.cpp.o"
  "CMakeFiles/fig10_overhead_cluster.dir/fig10_overhead_cluster.cpp.o.d"
  "fig10_overhead_cluster"
  "fig10_overhead_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_overhead_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
