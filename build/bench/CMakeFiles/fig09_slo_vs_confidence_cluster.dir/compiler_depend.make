# Empty compiler generated dependencies file for fig09_slo_vs_confidence_cluster.
# This may be replaced when dependencies are built.
