file(REMOVE_RECURSE
  "CMakeFiles/fig09_slo_vs_confidence_cluster.dir/fig09_slo_vs_confidence_cluster.cpp.o"
  "CMakeFiles/fig09_slo_vs_confidence_cluster.dir/fig09_slo_vs_confidence_cluster.cpp.o.d"
  "fig09_slo_vs_confidence_cluster"
  "fig09_slo_vs_confidence_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_slo_vs_confidence_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
