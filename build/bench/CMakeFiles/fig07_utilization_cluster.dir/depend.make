# Empty dependencies file for fig07_utilization_cluster.
# This may be replaced when dependencies are built.
