file(REMOVE_RECURSE
  "CMakeFiles/fig07_utilization_cluster.dir/fig07_utilization_cluster.cpp.o"
  "CMakeFiles/fig07_utilization_cluster.dir/fig07_utilization_cluster.cpp.o.d"
  "fig07_utilization_cluster"
  "fig07_utilization_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_utilization_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
