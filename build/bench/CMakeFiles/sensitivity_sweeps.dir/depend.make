# Empty dependencies file for sensitivity_sweeps.
# This may be replaced when dependencies are built.
