file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_sweeps.dir/sensitivity_sweeps.cpp.o"
  "CMakeFiles/sensitivity_sweeps.dir/sensitivity_sweeps.cpp.o.d"
  "sensitivity_sweeps"
  "sensitivity_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
