file(REMOVE_RECURSE
  "CMakeFiles/fig08_util_vs_slo_cluster.dir/fig08_util_vs_slo_cluster.cpp.o"
  "CMakeFiles/fig08_util_vs_slo_cluster.dir/fig08_util_vs_slo_cluster.cpp.o.d"
  "fig08_util_vs_slo_cluster"
  "fig08_util_vs_slo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_util_vs_slo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
