# Empty compiler generated dependencies file for fig08_util_vs_slo_cluster.
# This may be replaced when dependencies are built.
