file(REMOVE_RECURSE
  "CMakeFiles/dnn_architecture.dir/dnn_architecture.cpp.o"
  "CMakeFiles/dnn_architecture.dir/dnn_architecture.cpp.o.d"
  "dnn_architecture"
  "dnn_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
