# Empty compiler generated dependencies file for dnn_architecture.
# This may be replaced when dependencies are built.
